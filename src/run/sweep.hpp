// SweepRunner — multi-threaded execution of independent simulation grid
// points.
//
// Nakano's model is deterministic: a (MachineConfig, kernel, inputs)
// triple fully determines the RunReport.  Parameter sweeps — the bread
// and butter of every bench/ablation binary and of hmmsim — therefore
// decompose into embarrassingly parallel grid points.  SweepRunner runs
// them across a std::thread pool in which every worker owns its own
// Machine (and its own coroutine FrameArena, reused across the worker's
// grid points — see Machine::set_frame_arena); nothing is shared between
// grid points, so results are BIT-IDENTICAL regardless of the thread
// count (locked by tests/determinism_test.cpp).
//
// Two entry points:
//
//   SweepRunner pool(jobs);            // 0 => hardware concurrency
//   pool.for_each(count, [&](std::int64_t i) { ... });   // generic
//   std::vector<RunReport> r = pool.run(jobs_span);      // config+kernel
//
// for_each hands out indices through an atomic counter (dynamic load
// balancing: grid points can differ in cost by orders of magnitude) and
// rethrows the first worker exception after joining every thread.
// Callers aggregate by index, never by completion order, to stay
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "machine/machine.hpp"

namespace hmm::run {

/// One independent grid point: a machine shape plus the kernel to run on
/// it.  `setup` (optional) loads inputs into the freshly built machine
/// before the run; `collect` (optional) reads outputs afterwards — it
/// runs on the worker thread, so it must only touch state owned by this
/// grid point (e.g. a result slot indexed by the job's position).
struct SweepJob {
  MachineConfig config;
  Machine::KernelFn kernel;
  std::function<void(Machine&)> setup;
  std::function<void(Machine&, const RunReport&)> collect;
  /// Attached for the run, detached before `collect` returns.  Because
  /// jobs run concurrently, each job needs its OWN observer instance
  /// (e.g. one MetricsRegistry per grid point); sharing one across jobs
  /// would race.  Not owned; must outlive the sweep.
  EngineObserver* observer = nullptr;
};

class SweepRunner {
 public:
  /// `jobs` worker threads; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).  jobs == 1 never spawns a thread at all.
  explicit SweepRunner(std::int64_t jobs = 0);

  std::int64_t jobs() const { return jobs_; }

  /// Invoke fn(i) once for every i in [0, count), distributed over the
  /// pool.  Blocks until all indices completed; rethrows the first
  /// worker exception (remaining workers drain without starting new
  /// indices).
  void for_each(std::int64_t count,
                const std::function<void(std::int64_t)>& fn) const;

  /// Build, set up and run every job; reports are returned in job order.
  std::vector<RunReport> run(std::span<const SweepJob> sweep) const;

 private:
  std::int64_t jobs_;
};

/// Resolve a `--threads` request (engine workers INSIDE one run) against
/// a sweep's `--jobs` fan-out (grid points ACROSS runs).  0 on either
/// axis means "all cores".  The resolved count is clamped so
/// jobs x threads never oversubscribes the machine: when more than one
/// sweep worker is running, each run gets at most cores/jobs engine
/// workers (at least 1).  Reports are bit-identical at any thread count,
/// so the clamp only affects speed, never results (docs/API.md
/// "Intra-run parallelism").  Used by both hmmsim and the hmmsimd
/// service so CLI and wire requests resolve identically.
std::int64_t resolve_engine_threads(std::int64_t threads, std::int64_t jobs);

}  // namespace hmm::run
