#include "run/point.hpp"

#include <algorithm>
#include <optional>

#include "alg/convolution.hpp"
#include "alg/matmul.hpp"
#include "alg/prefix_sums.hpp"
#include "alg/sort.hpp"
#include "alg/string_match.hpp"
#include "alg/sum.hpp"
#include "core/error.hpp"
#include "machine/machine.hpp"

namespace hmm::run {

namespace {

// The span drivers (alg::sum_hmm etc.) build their Machines internally,
// out of reach of MachineConfig, so the resolved thread count travels as
// the calling thread's engine default for exactly the span of one
// dispatch.  RAII so precondition throws below restore the default too.
class EngineThreadsScope {
 public:
  explicit EngineThreadsScope(std::int64_t threads)
      : saved_(Machine::thread_engine_threads()) {
    Machine::set_thread_engine_threads(threads < 1 ? saved_ : threads);
  }
  ~EngineThreadsScope() { Machine::set_thread_engine_threads(saved_); }
  EngineThreadsScope(const EngineThreadsScope&) = delete;
  EngineThreadsScope& operator=(const EngineThreadsScope&) = delete;

 private:
  std::int64_t saved_;
};

}  // namespace

PointOutcome run_point(const Point& o, alg::WorkloadCache& workloads,
                       EngineObserver* observer) {
  const EngineThreadsScope threads_scope(o.threads);
  const bool hmm_model = o.model == "hmm";
  // A non-trivial topology reaches the span drivers as a thread-local
  // MachineOverlay (trivial specs and plain flags take the untouched
  // path).  The drivers' shared-size formulas are nondecreasing in the
  // per-DMM thread count, so sizing them for the LARGEST DMM — with the
  // overlay's per-DMM minima applied on top — gives every kernel the
  // room it expects on a heterogeneous machine.
  const bool overlaid = o.machine != nullptr && !o.machine->is_trivial();
  if (overlaid && !hmm_model) {
    throw PreconditionError(
        "--machine topologies with per-DMM overrides or links require the "
        "hmm model");
  }
  std::optional<MachineOverlay> overlay;
  if (overlaid) overlay.emplace(o.machine->overlay());
  const MachineOverlayScope overlay_scope(overlay ? &*overlay : nullptr);

  const std::int64_t pd = overlaid ? o.machine->max_threads_per_dmm()
                                   : (hmm_model ? o.p / o.d : 0);
  if (hmm_model && !overlaid && (o.p % o.d != 0 || pd < 1)) {
    throw PreconditionError("--p must be a positive multiple of --d");
  }

  PointOutcome out;
  auto finish = [&](const RunReport& r, std::string summary) {
    out.time = r.makespan;
    out.global_stages = r.global_pipeline.stages;
    out.ff_rounds = r.fast_forward.replayed_rounds;
    out.summary = std::move(summary);
  };

  if (o.algorithm == "sum") {
    const auto xs = workloads.random_words(o.n, o.seed);
    if (hmm_model) {
      const auto r =
          alg::sum_hmm(*xs, o.d, pd, o.w, o.l, observer, o.fast_forward);
      finish(r.report, "sum = " + std::to_string(r.sum));
    } else {
      const auto r = alg::sum_umm(*xs, o.p, o.w, o.l, observer, o.fast_forward);
      finish(r.report, "sum = " + std::to_string(r.sum));
    }
  } else if (o.algorithm == "scan") {
    const auto xs = workloads.random_words(o.n, o.seed);
    if (hmm_model) {
      const auto r = alg::prefix_sums_hmm(*xs, o.d, pd, o.w, o.l, observer,
                                          o.fast_forward);
      finish(r.report, "last prefix = " + std::to_string(r.prefix.back()));
    } else {
      const auto r = alg::prefix_sums_umm(*xs, o.p, o.w, o.l, observer,
                                          o.fast_forward);
      finish(r.report, "last prefix = " + std::to_string(r.prefix.back()));
    }
  } else if (o.algorithm == "conv") {
    const auto a = workloads.random_words(o.m, o.seed);
    const auto x =
        workloads.random_words(alg::conv_signal_length(o.m, o.n), o.seed + 1);
    if (hmm_model) {
      const auto r = alg::convolution_hmm(*a, *x, o.d, pd, o.w, o.l, observer,
                                          o.fast_forward);
      finish(r.report, "z[0] = " + std::to_string(r.z.front()));
    } else {
      const auto r = alg::convolution_umm(*a, *x, o.p, o.w, o.l, observer,
                                          o.fast_forward);
      finish(r.report, "z[0] = " + std::to_string(r.z.front()));
    }
  } else if (o.algorithm == "sort") {
    const auto xs = workloads.random_words(o.n, o.seed);
    if (hmm_model) {
      const auto r =
          alg::sort_hmm(*xs, o.d, pd, o.w, o.l, observer, o.fast_forward);
      finish(r.report, "min = " + std::to_string(r.sorted.front()) +
                           ", max = " + std::to_string(r.sorted.back()));
    } else {
      const auto r =
          alg::sort_umm(*xs, o.p, o.w, o.l, observer, o.fast_forward);
      finish(r.report, "min = " + std::to_string(r.sorted.front()) +
                           ", max = " + std::to_string(r.sorted.back()));
    }
  } else if (o.algorithm == "matmul") {
    const auto a = workloads.random_words(o.n * o.n, o.seed);
    const auto b = workloads.random_words(o.n * o.n, o.seed + 1);
    if (hmm_model) {
      const std::int64_t tile = std::min<std::int64_t>(o.n, o.w);
      const auto r = alg::matmul_hmm_tiled(*a, *b, o.n, o.d, pd, o.w, o.l,
                                           tile, observer, o.fast_forward);
      finish(r.report, "C[0][0] = " + std::to_string(r.c.front()));
    } else {
      const auto r = alg::matmul_umm(*a, *b, o.n, o.p, o.w, o.l, observer,
                                     o.fast_forward);
      finish(r.report, "C[0][0] = " + std::to_string(r.c.front()));
    }
  } else if (o.algorithm == "match") {
    const auto pat = workloads.random_words(o.m, o.seed, 0, 3);
    const auto txt = workloads.random_words(o.n, o.seed + 1, 0, 3);
    if (hmm_model) {
      const auto r = alg::string_match_hmm(*pat, *txt, o.d, pd, o.w, o.l,
                                           observer, o.fast_forward);
      finish(r.report,
             "min distance = " +
                 std::to_string(*std::min_element(r.distance.begin(),
                                                  r.distance.end())));
    } else {
      const auto r = alg::string_match_umm(*pat, *txt, o.p, o.w, o.l, observer,
                                           o.fast_forward);
      finish(r.report,
             "min distance = " +
                 std::to_string(*std::min_element(r.distance.begin(),
                                                  r.distance.end())));
    }
  } else {
    throw PreconditionError("unknown algorithm: " + o.algorithm);
  }
  return out;
}

}  // namespace hmm::run
