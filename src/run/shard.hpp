// Cross-process sweep sharding: deterministic partition of a sweep grid
// across K independent `hmmsim` processes (possibly on K machines), plus
// the job-manifest format that lets `hmm-merge` validate and reassemble
// the shard outputs into the exact CSV one process would have produced.
//
// The pieces:
//
//   GridSpec   — the sweep's identity: algorithm, model, the six axis
//                value lists, seed and the metrics flag.  Everything
//                that determines the CSV rows (and nothing that does
//                not: `--jobs` is a runner-local choice).  Its
//                `fingerprint()` — FNV-1a 64 over a canonical rendering
//                — tags every manifest and every sharded CSV row, so a
//                merge can prove all inputs came from the same grid.
//   ShardPlan  — round-robin assignment: shard i of K owns grid indices
//                {i, i+K, i+2K, ...} in row-major grid order.  Because
//                `n` is the outermost axis, round-robin interleaves the
//                expensive large-n points across shards instead of
//                handing the whole large-n tail to the last shard.
//   Manifest   — the JSON job file `hmmsim --emit-manifest` writes: one
//                entry per shard with the exact argv to run, the
//                expected row count, the fingerprint and the CSV header
//                every shard must reproduce.  docs/API.md documents the
//                schema field by field.
//
// Determinism contract: the same GridSpec and K always produce the same
// plan, the same manifest bytes and — because grid points are
// independent simulations — the same rows, regardless of which machine
// runs which shard (tests/shard_test.cpp, tools/shard_roundtrip.sh).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hmm::run {

/// FNV-1a 64-bit over `bytes` — the manifest fingerprint hash.
std::uint64_t fnv1a64(std::string_view bytes);

/// Round-robin shard assignment: shard `shard` of `shards` owns every
/// grid index congruent to it mod `shards`.
struct ShardPlan {
  std::int64_t shard = 0;   ///< in [0, shards)
  std::int64_t shards = 1;  ///< >= 1

  bool owns(std::int64_t grid_index) const {
    return grid_index % shards == shard;
  }

  /// How many of `grid_points` indices this shard owns.
  std::int64_t count(std::int64_t grid_points) const;

  /// The owned indices, ascending.
  std::vector<std::int64_t> indices(std::int64_t grid_points) const;
};

/// Parse "i/K" (e.g. "--shard=2/8") into a plan.  Returns false on
/// malformed input, K < 1 or i outside [0, K).
bool parse_shard_spec(std::string_view spec, ShardPlan& plan);

/// Identity of one sweep grid; see file comment.
struct GridSpec {
  std::string algorithm;
  std::string model = "hmm";
  std::vector<std::int64_t> n, m, p, w, l, d;
  std::uint64_t seed = 1;
  bool metrics = false;       ///< rows carry the five metric columns
  bool fast_forward = true;   ///< engine replay shortcut (hmmsim
                              ///< --fast-forward); part of the identity
                              ///< because shards must agree on it even
                              ///< though results are provably equal
  bool analyze = false;       ///< rows carry the three static-analyzer
                              ///< columns (hmmsim --analyze sweeps)
  /// Topology digest: the canonical text of a NON-trivial --machine
  /// spec (topo::TopologySpec::canonical()), empty for plain flags and
  /// for trivial specs — a flag run and its equivalent JSON must share a
  /// fingerprint, while any topology the flags cannot express must
  /// change it.  Appended to canonical() only when non-empty so all
  /// pre-topology fingerprints are unchanged.
  std::string machine;
  /// The --machine file path for manifest argv reconstruction.  Runner
  /// input, not grid identity: NOT part of canonical() (two paths to the
  /// same document fingerprint identically via `machine`).
  std::string machine_path;

  /// Total grid points (product of the six axis sizes).
  std::int64_t points() const;

  /// Canonical one-line rendering — the fingerprint input.  Stable
  /// across runs and processes by construction (no pointers, no
  /// locale, fixed field order).
  std::string canonical() const;

  /// 16 lowercase hex digits of fnv1a64(canonical()).
  std::string fingerprint() const;

  friend bool operator==(const GridSpec&, const GridSpec&) = default;
};

/// One shard's job in a manifest.
struct ManifestEntry {
  std::int64_t shard = 0;
  std::int64_t grid_points = 0;       ///< rows this shard must produce
  std::vector<std::string> argv;      ///< exact command to run it

  friend bool operator==(const ManifestEntry&,
                         const ManifestEntry&) = default;
};

/// The parsed (or planned) job manifest.
struct Manifest {
  std::int64_t version = 1;
  std::string tool;         ///< argv[0] recorded for the entries
  std::string fingerprint;  ///< GridSpec::fingerprint() of `grid`
  std::int64_t grid_points = 0;
  std::int64_t shards = 0;
  std::string header;       ///< CSV header line every shard must emit
  GridSpec grid;
  std::vector<ManifestEntry> entries;  ///< one per shard, in shard order

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// Plan a K-way manifest for `spec`.  `tool` is the command name to
/// record in each entry's argv (conventionally "hmmsim"); `header` is
/// the sharded CSV header the runs will emit
/// (report/sweep_csv.hpp: sweep_csv_header(spec.metrics, true)).
Manifest plan_manifest(const GridSpec& spec, std::int64_t shards,
                       const std::string& tool, const std::string& header);

/// Serialize to the manifest JSON document (stable key order, 2-space
/// indent, trailing newline) — byte-identical for identical manifests.
std::string manifest_json(const Manifest& manifest);

/// Parse a manifest document; throws PreconditionError on syntax
/// errors, missing fields, an unsupported version, or internal
/// inconsistencies (entry count != shards, fingerprint mismatch with
/// the embedded grid, point counts that don't add up).
Manifest parse_manifest_json(const std::string& text);

}  // namespace hmm::run
