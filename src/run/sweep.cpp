#include "run/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "core/error.hpp"

namespace hmm::run {

SweepRunner::SweepRunner(std::int64_t jobs) : jobs_(jobs) {
  HMM_REQUIRE(jobs >= 0, "SweepRunner: jobs must be >= 0");
  if (jobs_ == 0) {
    jobs_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void SweepRunner::for_each(
    std::int64_t count, const std::function<void(std::int64_t)>& fn) const {
  HMM_REQUIRE(count >= 0, "SweepRunner: count must be >= 0");
  if (count == 0) return;

  const std::int64_t workers = std::min(jobs_, count);
  if (workers <= 1) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::int64_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker = [&]() {
    for (;;) {
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (std::int64_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::int64_t resolve_engine_threads(std::int64_t threads, std::int64_t jobs) {
  HMM_REQUIRE(threads >= 0, "resolve_engine_threads: threads must be >= 0");
  HMM_REQUIRE(jobs >= 0, "resolve_engine_threads: jobs must be >= 0");
  const auto cores = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const std::int64_t t = threads == 0 ? cores : threads;
  const std::int64_t j = jobs == 0 ? cores : jobs;
  if (j <= 1 || j * t <= cores) return t;
  return std::max<std::int64_t>(1, cores / j);
}

std::vector<RunReport> SweepRunner::run(std::span<const SweepJob> sweep) const {
  std::vector<RunReport> reports(sweep.size());
  for_each(static_cast<std::int64_t>(sweep.size()), [&](std::int64_t i) {
    const SweepJob& job = sweep[static_cast<std::size_t>(i)];
    HMM_REQUIRE(static_cast<bool>(job.kernel),
                "SweepRunner: every job needs a kernel");
    // One frame arena per worker thread, attached to every grid point's
    // machine: the run resets it (cheap, chunks are kept), so chunk
    // allocation is paid once per worker instead of once per grid point.
    static thread_local FrameArena arena;
    // Likewise one pattern cache per worker: entries are keyed on
    // geometry + batch shape, so profiles priced at one grid point stay
    // exact at every other — warm caches carry across the sweep.  (Cache
    // WARMTH varies with worker scheduling; results never do, and the
    // CSV/report fields compared by determinism tests exclude hit
    // counters.)
    static thread_local PatternCache pattern_cache;
    Machine machine(job.config);
    machine.set_frame_arena(&arena);
    machine.set_pattern_cache(&pattern_cache);
    machine.set_observer(job.observer);
    if (job.setup) job.setup(machine);
    RunReport report = machine.run(job.kernel);
    if (job.collect) job.collect(machine, report);
    machine.set_observer(nullptr);
    reports[static_cast<std::size_t>(i)] = std::move(report);
  });
  return reports;
}

}  // namespace hmm::run
