// One fully resolved operating point and the dispatcher that runs it —
// the SINGLE definition of "execute algorithm X at (n, m, p, w, l, d)"
// shared by every frontend: the hmmsim CLI (local runs and sweeps), the
// hmmsimd service (src/service/server.cpp) and bench_service.  Keeping
// the dispatch here is what makes `hmmsim --connect` output byte-
// identical to a local run: both sides execute exactly this function and
// render rows through report/sweep_csv.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "alg/workload.hpp"
#include "machine/observer.hpp"
#include "machine/topology_spec.hpp"

namespace hmm::run {

/// One grid point of the sweep vocabulary (the hmmsim axes).
struct Point {
  std::string algorithm;      ///< sum, scan, conv, sort, matmul, match
  std::string model = "hmm";  ///< or "umm"
  std::int64_t n = 1 << 16;
  std::int64_t m = 32;
  std::int64_t p = 2048;
  std::int64_t w = 32;
  std::int64_t l = 400;
  std::int64_t d = 16;
  std::uint64_t seed = 1;
  bool fast_forward = true;
  /// Engine worker threads for this one run (MachineConfig::threads).
  /// 1 is the serial engine; 0 inherits the calling thread's default.
  /// Runner-local like --jobs: not part of a sweep's identity, so shard
  /// fingerprints and CSV rows never record it.
  std::int64_t threads = 1;
  /// Declarative machine topology (--machine=FILE), already resolved to
  /// the flat axes above by the frontend (p = total threads, d = total
  /// DMMs, w = width, l = global latency).  null or a TRIVIAL spec run
  /// the untouched flag path — byte-identity between a flag run and its
  /// synthesized JSON is by construction.  A non-trivial spec registers
  /// a MachineOverlay around the dispatch (hmm model only) so the span
  /// drivers build the heterogeneous/multi-HMM machine.  Shared because
  /// every point of a sweep references one parsed spec across workers.
  std::shared_ptr<const topo::TopologySpec> machine;
};

/// What one executed point reports back.
struct PointOutcome {
  Cycle time = 0;
  std::int64_t global_stages = 0;
  std::int64_t ff_rounds = 0;  ///< RunReport::fast_forward.replayed_rounds
  std::string summary;         ///< human one-liner ("sum = 42")
};

/// Execute `point` on a fresh machine, reading inputs through the shared
/// immutable `workloads` cache (thread-safe; concurrent points reuse one
/// buffer per distinct (n, seed)).  `observer`, when non-null, is
/// attached for the run — each concurrent point needs its own instance.
/// Throws PreconditionError on an unknown algorithm or incompatible
/// shape (p not a positive multiple of d on the hmm model).
PointOutcome run_point(const Point& point, alg::WorkloadCache& workloads,
                       EngineObserver* observer = nullptr);

}  // namespace hmm::run
