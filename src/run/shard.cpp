#include "run/shard.hpp"

#include <charconv>
#include <cstdio>

#include "core/error.hpp"
#include "core/json.hpp"

namespace hmm::run {

namespace {

std::string join(const std::vector<std::int64_t>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

void append_axis_json(std::string& out, const char* name,
                      const std::vector<std::int64_t>& xs) {
  out += "      \"";
  out += name;
  out += "\": [";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(xs[i]);
  }
  out += "]";
}

std::vector<std::int64_t> parse_axis(const json::Value& axes,
                                     const std::string& name) {
  std::vector<std::int64_t> out;
  for (const json::Value& v : axes.get(name).as_array()) {
    out.push_back(v.as_int64());
  }
  HMM_REQUIRE(!out.empty(), "manifest: axis \"" + name + "\" is empty");
  return out;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

std::int64_t ShardPlan::count(std::int64_t grid_points) const {
  HMM_REQUIRE(grid_points >= 0, "ShardPlan: grid_points must be >= 0");
  // Indices {shard, shard+shards, ...} below grid_points.
  if (grid_points <= shard) return 0;
  return (grid_points - shard - 1) / shards + 1;
}

std::vector<std::int64_t> ShardPlan::indices(std::int64_t grid_points) const {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(count(grid_points)));
  for (std::int64_t i = shard; i < grid_points; i += shards) out.push_back(i);
  return out;
}

bool parse_shard_spec(std::string_view spec, ShardPlan& plan) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= spec.size()) {
    return false;
  }
  const std::string_view lhs = spec.substr(0, slash);
  const std::string_view rhs = spec.substr(slash + 1);
  std::int64_t shard = 0;
  std::int64_t shards = 0;
  const auto [lend, lec] = std::from_chars(lhs.data(), lhs.data() + lhs.size(),
                                           shard);
  const auto [rend, rec] = std::from_chars(rhs.data(), rhs.data() + rhs.size(),
                                           shards);
  if (lec != std::errc{} || lend != lhs.data() + lhs.size() ||
      rec != std::errc{} || rend != rhs.data() + rhs.size()) {
    return false;
  }
  if (shards < 1 || shard < 0 || shard >= shards) return false;
  plan.shard = shard;
  plan.shards = shards;
  return true;
}

std::int64_t GridSpec::points() const {
  std::int64_t total = 1;
  for (const auto* axis : {&n, &m, &p, &w, &l, &d}) {
    total *= static_cast<std::int64_t>(axis->size());
  }
  return total;
}

std::string GridSpec::canonical() const {
  std::string s = "hmm-sweep-v1|alg=";
  s += algorithm;
  s += "|model=";
  s += model;
  const std::vector<std::int64_t>* axes[] = {&n, &m, &p, &w, &l, &d};
  const char* axis_names[] = {"n", "m", "p", "w", "l", "d"};
  for (int i = 0; i < 6; ++i) {
    s += '|';
    s += axis_names[i];
    s += '=';
    s += join(*axes[i]);
  }
  s += "|seed=";
  s += std::to_string(seed);
  s += "|metrics=";
  s += metrics ? '1' : '0';
  s += "|ff=";
  s += fast_forward ? '1' : '0';
  s += "|analyze=";
  s += analyze ? '1' : '0';
  // Topology digest: appended ONLY when non-empty so every pre-topology
  // grid keeps its historical fingerprint, and a trivial --machine file
  // (machine == "") fingerprints identically to its flag spelling.
  if (!machine.empty()) {
    s += "|machine=";
    s += machine;
  }
  return s;
}

std::string GridSpec::fingerprint() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical())));
  return buf;
}

Manifest plan_manifest(const GridSpec& spec, std::int64_t shards,
                       const std::string& tool, const std::string& header) {
  HMM_REQUIRE(shards >= 1, "plan_manifest: shards must be >= 1");
  HMM_REQUIRE(!spec.algorithm.empty(), "plan_manifest: empty algorithm");
  Manifest manifest;
  manifest.tool = tool;
  manifest.fingerprint = spec.fingerprint();
  manifest.grid_points = spec.points();
  manifest.shards = shards;
  manifest.header = header;
  manifest.grid = spec;
  for (std::int64_t i = 0; i < shards; ++i) {
    ManifestEntry entry;
    entry.shard = i;
    entry.grid_points = ShardPlan{i, shards}.count(manifest.grid_points);
    entry.argv = {tool, spec.algorithm, "--model", spec.model,
                  "--n", join(spec.n), "--m", join(spec.m)};
    if (spec.machine_path.empty()) {
      const std::vector<std::int64_t>* shape[] = {&spec.p, &spec.w, &spec.l,
                                                  &spec.d};
      const char* shape_names[] = {"--p", "--w", "--l", "--d"};
      for (int a = 0; a < 4; ++a) {
        entry.argv.push_back(shape_names[a]);
        entry.argv.push_back(join(*shape[a]));
      }
    } else {
      // --machine pins p/w/l/d (and is mutually exclusive with them on
      // the CLI), so the shard re-reads the file instead.
      entry.argv.push_back("--machine=" + spec.machine_path);
    }
    entry.argv.push_back("--seed");
    entry.argv.push_back(std::to_string(spec.seed));
    if (spec.metrics) entry.argv.push_back("--metrics");
    if (!spec.fast_forward) entry.argv.push_back("--fast-forward=off");
    if (spec.analyze) entry.argv.push_back("--analyze=plan");
    // Runner-local knobs (--jobs, --threads) never appear here or in the
    // fingerprint: each shard host picks its own parallelism and rows
    // are bit-identical regardless (docs/API.md "Sharded sweeps").
    entry.argv.push_back("--shard=" + std::to_string(i) + "/" +
                         std::to_string(shards));
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

std::string manifest_json(const Manifest& manifest) {
  const auto field = [](std::string& s, const char* key,
                        const std::string& value, bool quoted) {
    s += '"';
    s += key;
    s += "\": ";
    if (quoted) s += '"';
    s += quoted ? json::escape(value) : value;
    if (quoted) s += '"';
  };
  std::string out = "{\n  ";
  field(out, "version", std::to_string(manifest.version), false);
  out += ",\n  ";
  field(out, "tool", manifest.tool, true);
  out += ",\n  ";
  field(out, "fingerprint", manifest.fingerprint, true);
  out += ",\n  ";
  field(out, "grid_points", std::to_string(manifest.grid_points), false);
  out += ",\n  ";
  field(out, "shards", std::to_string(manifest.shards), false);
  out += ",\n  ";
  field(out, "header", manifest.header, true);
  out += ",\n  \"grid\": {\n    ";
  field(out, "algorithm", manifest.grid.algorithm, true);
  out += ",\n    ";
  field(out, "model", manifest.grid.model, true);
  out += ",\n    ";
  field(out, "seed", std::to_string(manifest.grid.seed), false);
  out += ",\n    \"metrics\": ";
  out += manifest.grid.metrics ? "true" : "false";
  out += ",\n    \"fast_forward\": ";
  out += manifest.grid.fast_forward ? "true" : "false";
  out += ",\n    \"analyze\": ";
  out += manifest.grid.analyze ? "true" : "false";
  // Topology fields only when present: pre-topology manifests keep their
  // historical bytes, and old readers never see unknown keys.
  if (!manifest.grid.machine.empty()) {
    out += ",\n    ";
    field(out, "machine", manifest.grid.machine, true);
  }
  if (!manifest.grid.machine_path.empty()) {
    out += ",\n    ";
    field(out, "machine_path", manifest.grid.machine_path, true);
  }
  out += ",\n    \"axes\": {\n";
  const std::vector<std::int64_t>* axes[] = {
      &manifest.grid.n, &manifest.grid.m, &manifest.grid.p,
      &manifest.grid.w, &manifest.grid.l, &manifest.grid.d};
  const char* axis_names[] = {"n", "m", "p", "w", "l", "d"};
  for (int i = 0; i < 6; ++i) {
    append_axis_json(out, axis_names[i], *axes[i]);
    out += i + 1 < 6 ? ",\n" : "\n";
  }
  out += "    }\n  },\n";
  out += "  \"entries\": [\n";
  for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
    const ManifestEntry& e = manifest.entries[i];
    out += "    {\"shard\": ";
    out += std::to_string(e.shard);
    out += ", \"grid_points\": ";
    out += std::to_string(e.grid_points);
    out += ", \"argv\": [";
    for (std::size_t j = 0; j < e.argv.size(); ++j) {
      if (j > 0) out += ", ";
      out += '"';
      out += json::escape(e.argv[j]);
      out += '"';
    }
    out += "]}";
    out += i + 1 < manifest.entries.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Manifest parse_manifest_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  Manifest manifest;
  manifest.version = doc.get("version").as_int64();
  HMM_REQUIRE(manifest.version == 1,
              "manifest: unsupported version " +
                  std::to_string(manifest.version));
  manifest.tool = doc.get("tool").as_string();
  manifest.fingerprint = doc.get("fingerprint").as_string();
  manifest.grid_points = doc.get("grid_points").as_int64();
  manifest.shards = doc.get("shards").as_int64();
  manifest.header = doc.get("header").as_string();

  const json::Value& grid = doc.get("grid");
  manifest.grid.algorithm = grid.get("algorithm").as_string();
  manifest.grid.model = grid.get("model").as_string();
  manifest.grid.seed =
      static_cast<std::uint64_t>(grid.get("seed").as_int64());
  manifest.grid.metrics = grid.get("metrics").as_bool();
  manifest.grid.fast_forward = grid.get("fast_forward").as_bool();
  manifest.grid.analyze = grid.get("analyze").as_bool();
  if (const json::Value* v = grid.find("machine")) {
    manifest.grid.machine = v->as_string();
  }
  if (const json::Value* v = grid.find("machine_path")) {
    manifest.grid.machine_path = v->as_string();
  }
  const json::Value& axes = grid.get("axes");
  manifest.grid.n = parse_axis(axes, "n");
  manifest.grid.m = parse_axis(axes, "m");
  manifest.grid.p = parse_axis(axes, "p");
  manifest.grid.w = parse_axis(axes, "w");
  manifest.grid.l = parse_axis(axes, "l");
  manifest.grid.d = parse_axis(axes, "d");

  for (const json::Value& e : doc.get("entries").as_array()) {
    ManifestEntry entry;
    entry.shard = e.get("shard").as_int64();
    entry.grid_points = e.get("grid_points").as_int64();
    for (const json::Value& a : e.get("argv").as_array()) {
      entry.argv.push_back(a.as_string());
    }
    manifest.entries.push_back(std::move(entry));
  }

  // Internal consistency: a manifest that disagrees with itself must not
  // drive a merge.
  HMM_REQUIRE(manifest.shards >= 1, "manifest: shards must be >= 1");
  HMM_REQUIRE(
      manifest.grid_points == manifest.grid.points(),
      "manifest: grid_points does not match the grid axes");
  HMM_REQUIRE(
      manifest.fingerprint == manifest.grid.fingerprint(),
      "manifest: fingerprint does not match the embedded grid spec");
  HMM_REQUIRE(static_cast<std::int64_t>(manifest.entries.size()) ==
                  manifest.shards,
              "manifest: entry count does not match shards");
  std::int64_t covered = 0;
  for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
    const ManifestEntry& entry = manifest.entries[i];
    HMM_REQUIRE(entry.shard == static_cast<std::int64_t>(i),
                "manifest: entries out of shard order");
    const ShardPlan plan{entry.shard, manifest.shards};
    HMM_REQUIRE(entry.grid_points == plan.count(manifest.grid_points),
                "manifest: entry grid_points disagrees with the round-robin "
                "plan");
    covered += entry.grid_points;
  }
  HMM_REQUIRE(covered == manifest.grid_points,
              "manifest: entries do not cover the grid");
  return manifest;
}

}  // namespace hmm::run
