#include "alg/workload.hpp"

#include "core/error.hpp"

namespace hmm::alg {

std::vector<Word> random_words(std::int64_t n, std::uint64_t seed, Word lo,
                               Word hi) {
  HMM_REQUIRE(n >= 0, "random_words: n must be >= 0");
  HMM_REQUIRE(lo <= hi, "random_words: lo must be <= hi");
  Rng rng(seed);
  std::vector<Word> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out.push_back(rng.next_in(lo, hi));
  return out;
}

std::vector<Word> iota_words(std::int64_t n, Word start) {
  HMM_REQUIRE(n >= 0, "iota_words: n must be >= 0");
  std::vector<Word> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out.push_back(start + i);
  return out;
}

std::vector<Word> box_filter(std::int64_t m) {
  HMM_REQUIRE(m >= 1, "box_filter: m must be >= 1");
  return std::vector<Word>(static_cast<std::size_t>(m), Word{1});
}

std::vector<Word> edge_filter(std::int64_t m) {
  HMM_REQUIRE(m >= 2, "edge_filter: m must be >= 2");
  std::vector<Word> out(static_cast<std::size_t>(m), Word{0});
  out.front() = -1;
  out.back() = 1;
  return out;
}

std::shared_ptr<const std::vector<Word>> WorkloadCache::random_words(
    std::int64_t n, std::uint64_t seed, Word lo, Word hi) {
  const Key key{n, seed, lo, hi};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Generate outside the lock: distinct keys don't serialize each other.
  // A racing duplicate generation of the SAME key is resolved below by
  // keeping whichever insert won (both buffers are identical anyway).
  auto words = std::make_shared<const std::vector<Word>>(
      alg::random_words(n, seed, lo, hi));
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.try_emplace(key, std::move(words)).first->second;
}

std::size_t WorkloadCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace hmm::alg
