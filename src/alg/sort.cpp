#include "alg/sort.hpp"

#include <algorithm>

#include "alg/device.hpp"
#include "alg/plans.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

namespace {

/// One bitonic compare-exchange stage (k, j) over the elements
/// [base, base + count) of `space`, where the element at local offset q
/// has GLOBAL index global0 + q (the direction bit (global & k) must use
/// global indices so that staged HMM blocks run the very same network).
/// Pairs are strip-mined over workers; pair q maps to the lower index
/// (q / j) * 2j + (q % j), so consecutive q give contiguous runs of
/// length j on both sides of the exchange.  Barrier-free.
SubTask device_bitonic_stage(ThreadCtx& t, MemorySpace space, Address base,
                             std::int64_t count, std::int64_t global0,
                             std::int64_t k, std::int64_t j,
                             std::int64_t self, std::int64_t workers) {
  if (self == kNoWorker) co_return;
  const std::int64_t pairs = count / 2;
  for (std::int64_t q = self; q < pairs; q += workers) {
    const std::int64_t lo = (q / j) * (2 * j) + (q % j);
    const std::int64_t hi = lo + j;
    const Word a = co_await t.read(space, base + lo);
    const Word b = co_await t.read(space, base + hi);
    co_await t.compute();  // the compare
    const bool ascending = ((global0 + lo) & k) == 0;
    const Word small = std::min(a, b), big = std::max(a, b);
    co_await t.write(space, base + lo, ascending ? small : big);
    co_await t.write(space, base + hi, ascending ? big : small);
  }
}

MachineSort sort_standalone(std::span<const Word> input, std::int64_t threads,
                            std::int64_t width, Cycle latency,
                            MemorySpace space, EngineObserver* observer,
                            bool fast_forward) {
  const auto n = static_cast<std::int64_t>(input.size());
  Machine machine = space == MemorySpace::kShared
                        ? Machine::dmm(width, latency, threads, n)
                        : Machine::umm(width, latency, threads, n);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  BankMemory& mem = space == MemorySpace::kShared
                        ? machine.shared_memory(0)
                        : machine.global_memory();
  mem.load(0, input);
  return sort_mm(machine, space, n);
}

}  // namespace

MachineSort sort_mm(Machine& machine, MemorySpace space, std::int64_t n) {
  HMM_REQUIRE(n >= 1 && is_pow2(n), "bitonic sort: n must be a power of two");
  BankMemory& mem = space == MemorySpace::kShared
                        ? machine.shared_memory(0)
                        : machine.global_memory();
  HMM_REQUIRE(n <= mem.size(), "bitonic sort: n exceeds memory size");

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t p = t.num_threads();
    for (std::int64_t k = 2; k <= n; k <<= 1) {
      for (std::int64_t j = k >> 1; j >= 1; j >>= 1) {
        co_await device_bitonic_stage(t, space, 0, n, 0, k, j, t.thread_id(),
                                      p);
        co_await t.barrier(BarrierScope::kMachine);
      }
    }
  });
  return {mem.dump(0, n), std::move(report)};
}

MachineSort sort_dmm(std::span<const Word> input, std::int64_t threads,
                     std::int64_t width, Cycle latency) {
  return sort_standalone(input, threads, width, latency,
                         MemorySpace::kShared, nullptr,
                         /*fast_forward=*/true);
}

MachineSort sort_umm(std::span<const Word> input, std::int64_t threads,
                     std::int64_t width, Cycle latency,
                     EngineObserver* observer, bool fast_forward) {
  return sort_standalone(input, threads, width, latency,
                         MemorySpace::kGlobal, observer, fast_forward);
}

MachineSort sort_hmm(std::span<const Word> input, std::int64_t num_dmms,
                     std::int64_t threads_per_dmm, std::int64_t width,
                     Cycle latency, EngineObserver* observer,
                     bool fast_forward) {
  const auto n = static_cast<std::int64_t>(input.size());
  const std::int64_t d = num_dmms;
  HMM_REQUIRE(d >= 1 && is_pow2(d) && n >= d && n % d == 0,
              "bitonic sort: d must be a power of two dividing n");
  Machine machine =
      Machine::hmm(width, latency, d, threads_per_dmm, n / d, n);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  machine.global_memory().load(0, input);
  return sort_hmm(machine, n);
}

MachineSort sort_hmm(Machine& machine, std::int64_t n) {
  const std::int64_t d = machine.num_dmms();
  HMM_REQUIRE(n >= 1 && is_pow2(n), "bitonic sort: n must be a power of two");
  HMM_REQUIRE(d >= 1 && is_pow2(d) && n % d == 0,
              "bitonic sort: d must be a power of two dividing n");
  const std::int64_t c = n / d;  // aligned block per DMM
  HMM_REQUIRE(is_pow2(c), "bitonic sort: n/d must be a power of two");
  HMM_REQUIRE(c <= machine.shared_memory(0).size(),
              "bitonic sort: n/d exceeds shared memory size");
  HMM_REQUIRE(n <= machine.global_memory().size(),
              "bitonic sort: n exceeds global memory size");

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const Address block = t.dmm_id() * c;  // this DMM's aligned block

    // A staged local pass: pull the block into shared memory, run the
    // given (k, j<=j_hi) tail of the network there (strides < c stay
    // inside aligned blocks), push it back, and meet everyone at the
    // machine barrier so the next cross-block stage sees it.
    auto local_pass = [&](std::int64_t k, std::int64_t j_hi) -> SubTask {
      co_await device_copy(t, MemorySpace::kShared, 0, MemorySpace::kGlobal,
                           block, c, self, workers);
      co_await t.barrier(BarrierScope::kDmm);
      for (std::int64_t j = j_hi; j >= 1; j >>= 1) {
        co_await device_bitonic_stage(t, MemorySpace::kShared, 0, c, block,
                                      k, j, self, workers);
        co_await t.barrier(BarrierScope::kDmm);
      }
      co_await device_copy(t, MemorySpace::kGlobal, block,
                           MemorySpace::kShared, 0, c, self, workers);
      co_await t.barrier(BarrierScope::kMachine);
    };

    // Phase A: every k <= c is entirely within blocks — one staging
    // covers the full local bitonic sort.  (Run the k-loop inside the
    // staged pass.)
    co_await device_copy(t, MemorySpace::kShared, 0, MemorySpace::kGlobal,
                         block, c, self, workers);
    co_await t.barrier(BarrierScope::kDmm);
    for (std::int64_t k = 2; k <= c; k <<= 1) {
      for (std::int64_t j = k >> 1; j >= 1; j >>= 1) {
        co_await device_bitonic_stage(t, MemorySpace::kShared, 0, c, block,
                                      k, j, self, workers);
        co_await t.barrier(BarrierScope::kDmm);
      }
    }
    co_await device_copy(t, MemorySpace::kGlobal, block, MemorySpace::kShared,
                         0, c, self, workers);
    co_await t.barrier(BarrierScope::kMachine);

    // Phase B: for k > c, strides >= c cross blocks and run on global
    // memory (all p threads share the work); the j < c tail of each k
    // goes back into shared.
    const ThreadId tid = t.thread_id();
    const std::int64_t p = t.num_threads();
    for (std::int64_t k = 2 * c; k <= n; k <<= 1) {
      for (std::int64_t j = k >> 1; j >= c; j >>= 1) {
        co_await device_bitonic_stage(t, MemorySpace::kGlobal, 0, n, 0, k, j,
                                      tid, p);
        co_await t.barrier(BarrierScope::kMachine);
      }
      co_await local_pass(k, c >> 1);
    }
  });
  return {machine.global_memory().dump(0, n), std::move(report)};
}

// ---- plan twins (plans.hpp) -------------------------------------------------

namespace {

/// Symbolic device_bitonic_stage: same pair mapping and operation order;
/// the direction bit only affects values, never addresses, so global0
/// and the comparison drop out.
void plan_bitonic_stage(analysis::PlanCtx& c, MemorySpace space, Address base,
                        std::int64_t count, std::int64_t k, std::int64_t j,
                        std::int64_t self, std::int64_t workers) {
  (void)k;
  if (self == kNoWorker) return;
  const std::int64_t pairs = count / 2;
  for (std::int64_t q = self; q < pairs; q += workers) {
    const std::int64_t lo = (q / j) * (2 * j) + (q % j);
    const std::int64_t hi = lo + j;
    c.read(space, base + lo);
    c.read(space, base + hi);
    c.compute();
    c.write(space, base + lo);
    c.write(space, base + hi);
  }
}

}  // namespace

std::optional<analysis::AccessPlan> build_sort_plan(const PlanPoint& point) {
  const std::int64_t n = point.n;
  HMM_REQUIRE(n >= 1 && is_pow2(n),
              "sort plan: n must be a power of two");
  if (point.model == "umm") {
    auto plan = analysis::build_access_plan(
        "sort/umm", {point.w, 1, point.p}, [&](analysis::PlanCtx& c) {
          c.set_label("bitonic-stage");
          for (std::int64_t k = 2; k <= n; k <<= 1) {
            for (std::int64_t j = k >> 1; j >= 1; j >>= 1) {
              plan_bitonic_stage(c, MemorySpace::kGlobal, 0, n, k, j,
                                 c.thread_id(), point.p);
              c.barrier(BarrierScope::kMachine);
            }
          }
        });
    plan.claimed_groups = 2;
    return plan;
  }
  if (point.model != "hmm") return std::nullopt;

  const std::int64_t d = point.d;
  HMM_REQUIRE(d >= 1 && is_pow2(d) && n % d == 0 && is_pow2(n / d),
              "sort plan: d and n/d must be powers of two");
  HMM_REQUIRE(point.p % d == 0, "sort plan: d must divide p");
  const std::int64_t c_blk = n / d;
  const std::int64_t pd = point.p / d;
  const std::int64_t p = point.p;
  auto plan = analysis::build_access_plan(
      "sort/hmm", {point.w, d, pd}, [&](analysis::PlanCtx& c) {
        const std::int64_t self = c.local_thread_id();
        const Address block = c.dmm_id() * c_blk;

        auto local_pass = [&](std::int64_t k, std::int64_t j_hi) {
          c.set_label("stage-in");
          plan_device_copy(c, MemorySpace::kShared, 0, MemorySpace::kGlobal,
                           block, c_blk, self, pd);
          c.barrier(BarrierScope::kDmm);
          c.set_label("local-stages");
          for (std::int64_t j = j_hi; j >= 1; j >>= 1) {
            plan_bitonic_stage(c, MemorySpace::kShared, 0, c_blk, k, j, self,
                               pd);
            c.barrier(BarrierScope::kDmm);
          }
          c.set_label("stage-out");
          plan_device_copy(c, MemorySpace::kGlobal, block,
                           MemorySpace::kShared, 0, c_blk, self, pd);
          c.barrier(BarrierScope::kMachine);
        };

        // Phase A: the full local bitonic sort under one staging.
        c.set_label("stage-in");
        plan_device_copy(c, MemorySpace::kShared, 0, MemorySpace::kGlobal,
                         block, c_blk, self, pd);
        c.barrier(BarrierScope::kDmm);
        c.set_label("local-stages");
        for (std::int64_t k = 2; k <= c_blk; k <<= 1) {
          for (std::int64_t j = k >> 1; j >= 1; j >>= 1) {
            plan_bitonic_stage(c, MemorySpace::kShared, 0, c_blk, k, j, self,
                               pd);
            c.barrier(BarrierScope::kDmm);
          }
        }
        c.set_label("stage-out");
        plan_device_copy(c, MemorySpace::kGlobal, block, MemorySpace::kShared,
                         0, c_blk, self, pd);
        c.barrier(BarrierScope::kMachine);

        // Phase B: cross-block stages on global, local tails staged.
        for (std::int64_t k = 2 * c_blk; k <= n; k <<= 1) {
          c.set_label("cross-stages");
          for (std::int64_t j = k >> 1; j >= c_blk; j >>= 1) {
            plan_bitonic_stage(c, MemorySpace::kGlobal, 0, n, k, j,
                               c.thread_id(), p);
            c.barrier(BarrierScope::kMachine);
          }
          local_pass(k, c_blk >> 1);
        }
      });
  plan.claimed_degree = 2;
  plan.claimed_groups = 1;
  return plan;
}

}  // namespace hmm::alg
