#include "alg/stencil.hpp"

#include "alg/device.hpp"
#include "alg/plans.hpp"
#include "core/error.hpp"

namespace hmm::alg {

namespace {

Word relax(Word left, Word mid, Word right) {
  return (left + 2 * mid + right) / 4;
}

void check_input(std::span<const Word> u0, std::int64_t sweeps) {
  HMM_REQUIRE(u0.size() >= 3, "stencil: need at least 3 cells");
  HMM_REQUIRE(sweeps >= 0, "stencil: sweeps must be >= 0");
}

}  // namespace

BaselineStencil stencil_sequential(std::span<const Word> u0,
                                   std::int64_t sweeps) {
  check_input(u0, sweeps);
  const auto n = static_cast<std::int64_t>(u0.size());
  SequentialRam ram(2 * n);
  ram.load(0, u0);
  ram.poke(n, u0.front());
  ram.poke(2 * n - 1, u0.back());
  Address cur = 0, nxt = n;
  for (std::int64_t s = 0; s < sweeps; ++s) {
    for (Address i = 1; i < n - 1; ++i) {
      const Word v = relax(ram.read(cur + i - 1), ram.read(cur + i),
                           ram.read(cur + i + 1));
      ram.tick();
      ram.write(nxt + i, v);
    }
    std::swap(cur, nxt);
  }
  return {ram.dump(cur, n), ram.time()};
}

MachineStencil stencil_umm(std::span<const Word> u0, std::int64_t sweeps,
                           std::int64_t threads, std::int64_t width,
                           Cycle latency, EngineObserver* observer,
                           bool fast_forward) {
  check_input(u0, sweeps);
  const auto n = static_cast<std::int64_t>(u0.size());
  Machine machine = Machine::umm(width, latency, threads, 2 * n);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  machine.global_memory().load(0, u0);
  machine.global_memory().poke(n, u0.front());
  machine.global_memory().poke(2 * n - 1, u0.back());

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t p = t.num_threads();
    for (std::int64_t s = 0; s < sweeps; ++s) {
      const Address cur = (s % 2 == 0) ? 0 : n;
      const Address nxt = (s % 2 == 0) ? n : 0;
      for (Address i = 1 + t.thread_id(); i < n - 1; i += p) {
        const Word a = co_await t.read(MemorySpace::kGlobal, cur + i - 1);
        const Word b = co_await t.read(MemorySpace::kGlobal, cur + i);
        const Word c = co_await t.read(MemorySpace::kGlobal, cur + i + 1);
        co_await t.compute();
        co_await t.write(MemorySpace::kGlobal, nxt + i, relax(a, b, c));
      }
      co_await t.barrier(BarrierScope::kMachine);
    }
  });
  const Address result = (sweeps % 2 == 0) ? 0 : n;
  return {machine.global_memory().dump(result, n), std::move(report)};
}

MachineStencil stencil_hmm(std::span<const Word> u0, std::int64_t sweeps,
                           std::int64_t num_dmms,
                           std::int64_t threads_per_dmm, std::int64_t width,
                           Cycle latency) {
  check_input(u0, sweeps);
  const auto n = static_cast<std::int64_t>(u0.size());
  const std::int64_t d = num_dmms;
  HMM_REQUIRE(n % d == 0 && n / d >= 2, "stencil: need n % d == 0, n/d >= 2");
  const std::int64_t c = n / d;

  // Shared: two halo-padded buffers of c + 2 cells.
  const Address bufA = 0, bufB = c + 2;
  Machine machine = Machine::hmm(width, latency, d, threads_per_dmm,
                                 2 * (c + 2), n);
  machine.global_memory().load(0, u0);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const Address row0 = t.dmm_id() * c;
    const bool leftmost = t.dmm_id() == 0;
    const bool rightmost = t.dmm_id() == t.num_dmms() - 1;

    // Initial staging: slice into the interior of buffer A.
    co_await device_copy(t, MemorySpace::kShared, bufA + 1,
                         MemorySpace::kGlobal, row0, c, self, workers);
    co_await t.barrier(BarrierScope::kMachine);

    for (std::int64_t s = 0; s < sweeps; ++s) {
      const Address cur = (s % 2 == 0) ? bufA : bufB;
      const Address nxt = (s % 2 == 0) ? bufB : bufA;

      // Refresh halos from the neighbours' published boundary cells.
      if (self == 0 && !leftmost) {
        const Word hv = co_await t.read(MemorySpace::kGlobal, row0 - 1);
        co_await t.write(MemorySpace::kShared, cur, hv);
      }
      if (self == std::min<std::int64_t>(1, workers - 1) && !rightmost) {
        const Word hv = co_await t.read(MemorySpace::kGlobal, row0 + c);
        co_await t.write(MemorySpace::kShared, cur + c + 1, hv);
      }
      co_await t.barrier(BarrierScope::kDmm);

      // Relax the interior of the slice at latency 1.
      for (Address i = self; i < c; i += workers) {
        const Address g = row0 + i;
        Word v;
        if (g == 0 || g == n - 1) {
          v = co_await t.read(MemorySpace::kShared, cur + 1 + i);
        } else {
          const Word a = co_await t.read(MemorySpace::kShared, cur + i);
          const Word b = co_await t.read(MemorySpace::kShared, cur + 1 + i);
          const Word cc = co_await t.read(MemorySpace::kShared, cur + 2 + i);
          co_await t.compute();
          v = relax(a, b, cc);
        }
        co_await t.write(MemorySpace::kShared, nxt + 1 + i, v);
      }
      co_await t.barrier(BarrierScope::kDmm);

      // Publish this slice's boundary cells for the neighbours.
      if (self == 0) {
        const Word v = co_await t.read(MemorySpace::kShared, nxt + 1);
        co_await t.write(MemorySpace::kGlobal, row0, v);
      }
      if (self == std::min<std::int64_t>(1, workers - 1)) {
        const Word v = co_await t.read(MemorySpace::kShared, nxt + c);
        co_await t.write(MemorySpace::kGlobal, row0 + c - 1, v);
      }
      co_await t.barrier(BarrierScope::kMachine);
    }

    // Final write-back of the whole slice.
    const Address fin = (sweeps % 2 == 0) ? bufA : bufB;
    co_await device_copy(t, MemorySpace::kGlobal, row0, MemorySpace::kShared,
                         fin + 1, c, self, workers);
  });
  return {machine.global_memory().dump(0, n), std::move(report)};
}

// ---- plan twins (plans.hpp) -------------------------------------------------

std::optional<analysis::AccessPlan> build_stencil_plan(const PlanPoint& point) {
  if (point.model != "umm") return std::nullopt;
  const std::int64_t n = point.n;
  const std::int64_t sweeps = point.m;
  HMM_REQUIRE(n >= 3 && sweeps >= 0, "stencil plan: n >= 3, sweeps >= 0");
  const std::int64_t p = point.p;
  auto plan = analysis::build_access_plan(
      "stencil/umm", {point.w, 1, p}, [&](analysis::PlanCtx& c) {
        c.set_label("relax");
        for (std::int64_t s = 0; s < sweeps; ++s) {
          const Address cur = (s % 2 == 0) ? 0 : n;
          const Address nxt = (s % 2 == 0) ? n : 0;
          for (Address i = 1 + c.thread_id(); i < n - 1; i += p) {
            c.read(MemorySpace::kGlobal, cur + i - 1);
            c.read(MemorySpace::kGlobal, cur + i);
            c.read(MemorySpace::kGlobal, cur + i + 1);
            c.compute();
            c.write(MemorySpace::kGlobal, nxt + i);
          }
          c.barrier(BarrierScope::kMachine);
        }
      });
  plan.claimed_groups = 2;
  return plan;
}

}  // namespace hmm::alg
