#include "alg/sum.hpp"

#include <algorithm>

#include "alg/device.hpp"
#include "alg/plans.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

// ---- baselines --------------------------------------------------------------

BaselineSum sum_sequential(SequentialRam& ram, Address base, std::int64_t n) {
  HMM_REQUIRE(n >= 1, "sum: n must be >= 1");
  Word total = 0;
  for (Address i = 0; i < n; ++i) {
    total += ram.read(base + i);  // one read + one add
    ram.tick();
  }
  return {total, ram.time()};
}

BaselineSum sum_sequential(std::span<const Word> input) {
  SequentialRam ram(static_cast<std::int64_t>(input.size()));
  ram.load(0, input);
  return sum_sequential(ram, 0, static_cast<std::int64_t>(input.size()));
}

BaselineSum sum_pram(Pram& pram, Address base, std::int64_t n) {
  HMM_REQUIRE(n >= 1, "sum: n must be >= 1");
  // Lemma 3 shape: one pass of per-processor partial sums is subsumed by
  // Brent charging inside parallel_step, then pairwise folding.
  std::int64_t s = n;
  while (s > 1) {
    const std::int64_t half = ceil_div(s, 2);
    const std::int64_t folds = s - half;
    pram.parallel_step(folds, [&](std::int64_t i, PramAccess& a) {
      a.write(base + i, a.read(base + i) + a.read(base + half + i));
    });
    s = half;
  }
  return {pram.peek(base), pram.time()};
}

BaselineSum sum_pram(std::span<const Word> input, std::int64_t processors) {
  Pram pram(processors, static_cast<std::int64_t>(input.size()));
  pram.load(0, input);
  return sum_pram(pram, 0, static_cast<std::int64_t>(input.size()));
}

// ---- Lemma 5 ---------------------------------------------------------------

MachineSum sum_mm(Machine& machine, MemorySpace space, Address base,
                  std::int64_t n) {
  HMM_REQUIRE(n >= 1, "sum: n must be >= 1");
  const std::int64_t p = machine.num_threads();
  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    co_await device_tree_sum(t, space, base, n, t.thread_id(), p,
                             BarrierScope::kMachine);
  });
  BankMemory& mem = space == MemorySpace::kShared ? machine.shared_memory(0)
                                                  : machine.global_memory();
  return {mem.peek(base), std::move(report)};
}

MachineSum sum_dmm(std::span<const Word> input, std::int64_t threads,
                   std::int64_t width, Cycle latency) {
  const auto n = static_cast<std::int64_t>(input.size());
  Machine m = Machine::dmm(width, latency, threads, n);
  m.shared_memory(0).load(0, input);
  return sum_mm(m, MemorySpace::kShared, 0, n);
}

MachineSum sum_umm(std::span<const Word> input, std::int64_t threads,
                   std::int64_t width, Cycle latency,
                   EngineObserver* observer, bool fast_forward) {
  const auto n = static_cast<std::int64_t>(input.size());
  Machine m = Machine::umm(width, latency, threads, n);
  m.set_observer(observer);
  m.set_fast_forward(fast_forward);
  m.global_memory().load(0, input);
  return sum_mm(m, MemorySpace::kGlobal, 0, n);
}

// ---- Lemma 6 ---------------------------------------------------------------

MachineSum sum_hmm_straightforward(Machine& machine, std::int64_t n) {
  HMM_REQUIRE(n >= 1, "sum: n must be >= 1");
  HMM_REQUIRE(machine.has_global(), "Lemma 6 needs a global memory");
  const std::int64_t p0 = machine.topology().threads_on(0);
  HMM_REQUIRE(machine.global_memory().size() >= n + p0,
              "global memory too small: need n + p0 cells");

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    if (t.dmm_id() != 0) co_return;  // only DMM(0) participates
    const std::int64_t self = t.local_thread_id();
    // Column sums over the p0-column layout: round j reads
    // A[j*p0 + self] — contiguous (Theorem 2).
    Word acc = 0;
    for (Address i = self; i < n; i += p0) {
      acc += co_await t.read(MemorySpace::kGlobal, i);
      co_await t.compute();
    }
    co_await t.write(MemorySpace::kGlobal, n + self, acc);
    // Lemma-5 tree ON THE GLOBAL MEMORY: every level pays latency l.
    co_await device_tree_sum(t, MemorySpace::kGlobal, n, p0, self, p0,
                             BarrierScope::kDmm);
  });
  return {machine.global_memory().peek(n), std::move(report)};
}

MachineSum sum_hmm_straightforward(std::span<const Word> input,
                                   std::int64_t p0, std::int64_t width,
                                   Cycle latency) {
  const auto n = static_cast<std::int64_t>(input.size());
  // A single DMM with a global memory is exactly "DMM(0) of an HMM".
  Machine m = Machine::hmm(width, latency, /*num_dmms=*/1,
                           /*threads_per_dmm=*/p0, /*shared_size=*/1,
                           /*global_size=*/n + p0);
  m.global_memory().load(0, input);
  return sum_hmm_straightforward(m, n);
}

// ---- Theorem 7 --------------------------------------------------------------

MachineSum sum_hmm(Machine& machine, std::int64_t n) {
  HMM_REQUIRE(n >= 1, "sum: n must be >= 1");
  HMM_REQUIRE(machine.has_global() && machine.has_shared(),
              "Theorem 7 needs both memories (an HMM)");
  const std::int64_t p = machine.num_threads();
  const std::int64_t d = machine.num_dmms();
  HMM_REQUIRE(machine.global_memory().size() >= n + d,
              "global memory too small: need n + d cells");

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t pd = t.dmm_thread_count();
    const std::int64_t self = t.local_thread_id();
    const Address shared_base = 0;

    // Phase 1: column sums over the p-column layout into registers.
    // Thread (dmm, self) owns global column dmm*pd + self... no: columns
    // are by GLOBAL thread id so that round j reads A[j*p + tid] — one
    // contiguous run across the whole machine (Theorem 2).
    const ThreadId tid = t.thread_id();
    Word acc = 0;
    for (Address i = tid; i < n; i += p) {
      acc += co_await t.read(MemorySpace::kGlobal, i);
      co_await t.compute();
    }

    // Phase 2: per-DMM tree in latency-1 shared memory.
    co_await t.write(MemorySpace::kShared, shared_base + self, acc);
    co_await device_tree_sum(t, MemorySpace::kShared, shared_base, pd, self,
                             pd, BarrierScope::kDmm);

    // Phase 3: one partial per DMM to global scratch A[n..n+d).
    if (self == 0) {
      const Word dmm_sum = co_await t.read(MemorySpace::kShared, shared_base);
      co_await t.write(MemorySpace::kGlobal, n + t.dmm_id(), dmm_sum);
    }
    co_await t.barrier(BarrierScope::kMachine);
    if (t.dmm_id() != 0) co_return;

    // Phase 4 (DMM(0) only): stage the d partials into shared memory with
    // coalesced reads, tree-sum them at latency 1, write the total back.
    const std::int64_t stagers = std::min(pd, d);
    const std::int64_t stage_self = self < stagers ? self : kNoWorker;
    co_await device_copy(t, MemorySpace::kShared, shared_base,
                         MemorySpace::kGlobal, n, d, stage_self, stagers);
    co_await t.barrier(BarrierScope::kDmm);
    co_await device_tree_sum(t, MemorySpace::kShared, shared_base, d, self,
                             pd, BarrierScope::kDmm);
    if (self == 0) {
      const Word total = co_await t.read(MemorySpace::kShared, shared_base);
      co_await t.write(MemorySpace::kGlobal, n, total);
    }
  });
  return {machine.global_memory().peek(n), std::move(report)};
}

MachineSum sum_hmm(std::span<const Word> input, std::int64_t num_dmms,
                   std::int64_t threads_per_dmm, std::int64_t width,
                   Cycle latency, EngineObserver* observer, bool fast_forward) {
  const auto n = static_cast<std::int64_t>(input.size());
  const std::int64_t shared_size = std::max(threads_per_dmm, num_dmms);
  Machine m = Machine::hmm(width, latency, num_dmms, threads_per_dmm,
                           shared_size, n + num_dmms);
  m.set_observer(observer);
  m.set_fast_forward(fast_forward);
  m.global_memory().load(0, input);
  return sum_hmm(m, n);
}

// ---- plan twins (plans.hpp) -------------------------------------------------

std::optional<analysis::AccessPlan> build_sum_plan(const PlanPoint& point) {
  const std::int64_t n = point.n;
  HMM_REQUIRE(n >= 1, "sum plan: n must be >= 1");
  if (point.model == "umm") {
    // sum_umm == sum_mm on the global memory: one Lemma-5 tree.
    auto plan = analysis::build_access_plan(
        "sum/umm", {point.w, 1, point.p}, [&](analysis::PlanCtx& c) {
          c.set_label("tree-fold");
          plan_device_tree_sum(c, MemorySpace::kGlobal, 0, n, c.thread_id(),
                               point.p, BarrierScope::kMachine);
        });
    plan.claimed_groups = 1;
    return plan;
  }
  if (point.model != "hmm") return std::nullopt;

  // Theorem-7 sum_hmm, phase by phase.
  HMM_REQUIRE(point.d >= 1 && point.p % point.d == 0,
              "sum plan: d must divide p");
  const std::int64_t d = point.d;
  const std::int64_t pd = point.p / d;
  const std::int64_t p = point.p;
  auto plan = analysis::build_access_plan(
      "sum/hmm", {point.w, d, pd}, [&](analysis::PlanCtx& c) {
        const std::int64_t self = c.local_thread_id();
        c.set_label("column-sums");
        for (Address i = c.thread_id(); i < n; i += p) {
          c.read(MemorySpace::kGlobal, i);
          c.compute();
        }
        c.set_label("dmm-tree");
        c.write(MemorySpace::kShared, self);
        plan_device_tree_sum(c, MemorySpace::kShared, 0, pd, self, pd,
                             BarrierScope::kDmm);
        c.set_label("publish-partials");
        if (self == 0) {
          c.read(MemorySpace::kShared, 0);
          c.write(MemorySpace::kGlobal, n + c.dmm_id());
        }
        c.barrier(BarrierScope::kMachine);
        if (c.dmm_id() != 0) return;
        c.set_label("final-tree");
        const std::int64_t stagers = std::min(pd, d);
        plan_device_copy(c, MemorySpace::kShared, 0, MemorySpace::kGlobal, n,
                         d, self < stagers ? self : kNoWorker, stagers);
        c.barrier(BarrierScope::kDmm);
        plan_device_tree_sum(c, MemorySpace::kShared, 0, d, self, pd,
                             BarrierScope::kDmm);
        if (self == 0) {
          c.read(MemorySpace::kShared, 0);
          c.write(MemorySpace::kGlobal, n);
        }
      });
  plan.claimed_degree = 1;
  plan.claimed_groups = 1;
  return plan;
}

}  // namespace hmm::alg
