#include "alg/matmul.hpp"

#include "alg/device.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

namespace {

void check_matrices(std::span<const Word> a, std::span<const Word> b,
                    std::int64_t rows) {
  HMM_REQUIRE(rows >= 1, "matmul: rows must be >= 1");
  HMM_REQUIRE(static_cast<std::int64_t>(a.size()) == rows * rows &&
                  static_cast<std::int64_t>(b.size()) == rows * rows,
              "matmul: A and B must be rows x rows");
}

}  // namespace

BaselineMatmul matmul_sequential(std::span<const Word> a,
                                 std::span<const Word> b, std::int64_t rows) {
  check_matrices(a, b, rows);
  const std::int64_t cells = rows * rows;
  SequentialRam ram(3 * cells);
  const Address ax = 0, bx = cells, cx = 2 * cells;
  ram.load(ax, a);
  ram.load(bx, b);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < rows; ++j) {
      Word acc = 0;
      for (std::int64_t k = 0; k < rows; ++k) {
        acc += ram.read(ax + i * rows + k) * ram.read(bx + k * rows + j);
        ram.tick();
      }
      ram.write(cx + i * rows + j, acc);
    }
  }
  return {ram.dump(cx, cells), ram.time()};
}

MachineMatmul matmul_umm(std::span<const Word> a, std::span<const Word> b,
                         std::int64_t rows, std::int64_t threads,
                         std::int64_t width, Cycle latency,
                         EngineObserver* observer, bool fast_forward) {
  check_matrices(a, b, rows);
  const std::int64_t cells = rows * rows;
  Machine machine = Machine::umm(width, latency, threads, 3 * cells);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  const Address ax = 0, bx = cells, cx = 2 * cells;
  machine.global_memory().load(ax, a);
  machine.global_memory().load(bx, b);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t p = t.num_threads();
    // Cell sweep in C-row-major order: within a warp i is (usually)
    // fixed and j consecutive, so A[i][k] is a broadcast and B[k][j] is
    // a contiguous run — coalesced but with zero reuse.
    for (Address idx = t.thread_id(); idx < cells; idx += p) {
      const std::int64_t i = idx / rows, j = idx % rows;
      Word acc = 0;
      for (std::int64_t k = 0; k < rows; ++k) {
        const Word av = co_await t.read(MemorySpace::kGlobal, ax + i * rows + k);
        const Word bv = co_await t.read(MemorySpace::kGlobal, bx + k * rows + j);
        co_await t.compute();
        acc += av * bv;
      }
      co_await t.write(MemorySpace::kGlobal, cx + idx, acc);
    }
  });
  return {machine.global_memory().dump(cx, cells), std::move(report)};
}

MachineMatmul matmul_hmm_tiled(std::span<const Word> a,
                               std::span<const Word> b, std::int64_t rows,
                               std::int64_t num_dmms,
                               std::int64_t threads_per_dmm,
                               std::int64_t width, Cycle latency,
                               std::int64_t tile, EngineObserver* observer,
                               bool fast_forward) {
  check_matrices(a, b, rows);
  HMM_REQUIRE(tile >= 1 && rows % tile == 0,
              "matmul: tile must divide rows");
  const std::int64_t cells = rows * rows;
  const std::int64_t t2 = tile * tile;
  const std::int64_t grid = rows / tile;  // tiles per matrix dimension

  // Shared layout per DMM: A-tile, B-tile, C-tile accumulators.
  const Address s_a = 0, s_b = t2, s_c = 2 * t2;
  Machine machine = Machine::hmm(width, latency, num_dmms, threads_per_dmm,
                                 3 * t2, 3 * cells);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  const Address ax = 0, bx = cells, cx = 2 * cells;
  machine.global_memory().load(ax, a);
  machine.global_memory().load(bx, b);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const std::int64_t d = t.num_dmms();

    // C tiles are dealt round-robin over the DMMs; the DMMs never need
    // to talk to each other.
    for (std::int64_t tidx = t.dmm_id(); tidx < grid * grid; tidx += d) {
      const std::int64_t ti = tidx / grid, tj = tidx % grid;

      // Zero the C-tile accumulators.
      for (Address c = self; c < t2; c += workers) {
        co_await t.write(MemorySpace::kShared, s_c + c, 0);
      }
      co_await t.barrier(BarrierScope::kDmm);

      for (std::int64_t kt = 0; kt < grid; ++kt) {
        // Stage A[ti, kt] and B[kt, tj] as flat 2D block copies so every
        // thread carries one cell and the global latencies overlap.
        co_await device_copy_2d(t, MemorySpace::kShared, s_a, tile,
                                MemorySpace::kGlobal,
                                ax + ti * tile * rows + kt * tile, rows, tile,
                                tile, self, workers);
        co_await device_copy_2d(t, MemorySpace::kShared, s_b, tile,
                                MemorySpace::kGlobal,
                                bx + kt * tile * rows + tj * tile, rows, tile,
                                tile, self, workers);
        co_await t.barrier(BarrierScope::kDmm);

        // Multiply-accumulate entirely at latency 1.  Within a warp j is
        // consecutive: As broadcasts, Bs rows are contiguous.
        for (Address c = self; c < t2; c += workers) {
          const std::int64_t i = c / tile, j = c % tile;
          Word acc = co_await t.read(MemorySpace::kShared, s_c + c);
          for (std::int64_t k = 0; k < tile; ++k) {
            const Word av =
                co_await t.read(MemorySpace::kShared, s_a + i * tile + k);
            const Word bv =
                co_await t.read(MemorySpace::kShared, s_b + k * tile + j);
            co_await t.compute();
            acc += av * bv;
          }
          co_await t.write(MemorySpace::kShared, s_c + c, acc);
        }
        co_await t.barrier(BarrierScope::kDmm);
      }

      // Write the finished tile back as one flat 2D block copy.
      co_await device_copy_2d(t, MemorySpace::kGlobal,
                              cx + ti * tile * rows + tj * tile, rows,
                              MemorySpace::kShared, s_c, tile, tile, tile,
                              self, workers);
      co_await t.barrier(BarrierScope::kDmm);
    }
  });
  return {machine.global_memory().dump(cx, cells), std::move(report)};
}

}  // namespace hmm::alg
