// Generic tree reductions — the sum of §VI/§VII generalised to any
// commutative monoid the unit-cost RAM can evaluate (min, max, and
// index-carrying argmin/argmax).  Same access pattern, same bounds:
// Θ(n/w + nl/p + l log n) on a DMM/UMM and Θ(n/w + nl/p + l + log n)
// on the HMM, since the fold only ever needs the operator to be
// associative and commutative.
#pragma once

#include <span>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/task.hpp"
#include "machine/thread_ctx.hpp"

namespace hmm::alg {

/// The monoids the device fold supports.  (An enum rather than a
/// callable so device code stays header-free and the op costs exactly
/// one RAM time unit, like the paper's additions.)
enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

/// Apply the monoid on the host (identical semantics to the device).
Word apply_reduce_op(ReduceOp op, Word a, Word b);

/// Identity element of the monoid.
Word reduce_identity(ReduceOp op);

/// Device-side fold of A[base..base+n) under `op`; same collective
/// contract and self-synchronisation as device_tree_sum (which is the
/// kSum instantiation).  Result lands in A[base].
SubTask device_tree_reduce(ThreadCtx& t, MemorySpace space, Address base,
                           std::int64_t n, std::int64_t self,
                           std::int64_t workers, BarrierScope scope,
                           ReduceOp op);

struct MachineReduce {
  Word value = 0;
  RunReport report;
};

/// Host drivers mirroring sum_umm / sum_hmm for any monoid.
MachineReduce reduce_umm(std::span<const Word> input, ReduceOp op,
                         std::int64_t threads, std::int64_t width,
                         Cycle latency);
MachineReduce reduce_hmm(std::span<const Word> input, ReduceOp op,
                         std::int64_t num_dmms, std::int64_t threads_per_dmm,
                         std::int64_t width, Cycle latency);

}  // namespace hmm::alg
