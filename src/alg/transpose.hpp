// Matrix transpose on the DMM — the canonical bank-conflict case study
// from the paper's companion work on conflict-free offline permutation
// ([13] "Simple memory machine models for GPUs", [19] "An implementation
// of conflict-free off-line permutation on the GPU").
//
// Transposing an r x r row-major matrix makes one side of the copy
// stride-r: when r is a multiple of the width w, a warp's column access
// hits ONE bank w times (w pipeline stages).  The classic fix — also the
// one [19] evaluates — is diagonal skewing: cell (i, j) is stored at
// column (i + j) mod r, which puts every column access on w distinct
// banks.  Both variants are implemented so the ablation bench can show
// the w-fold gap the model predicts.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"

namespace hmm::alg {

struct MachineTranspose {
  std::vector<Word> out;  ///< row-major transposed matrix
  RunReport report;
};

/// Naive transpose of a rows x rows row-major matrix on a standalone DMM:
/// coalesced reads, stride-r writes (the conflicted side).
MachineTranspose transpose_dmm_naive(std::span<const Word> matrix,
                                     std::int64_t rows, std::int64_t threads,
                                     std::int64_t width, Cycle latency);

/// Conflict-free transpose via diagonal skewing: both the skewed store
/// and the skewed load spread every warp over w distinct banks.
/// Requires rows % width == 0.
MachineTranspose transpose_dmm_skewed(std::span<const Word> matrix,
                                      std::int64_t rows, std::int64_t threads,
                                      std::int64_t width, Cycle latency);

/// Machine-taking cores (e.g. for attaching an AccessChecker before the
/// run): the rows x rows input must already sit at shared [0, rows^2);
/// naive writes its output at [rows^2, 2 rows^2), skewed stages through
/// [rows^2, 2 rows^2) and writes output at [2 rows^2, 3 rows^2).
MachineTranspose transpose_mm_naive(Machine& machine, std::int64_t rows);
MachineTranspose transpose_mm_skewed(Machine& machine, std::int64_t rows);

}  // namespace hmm::alg
