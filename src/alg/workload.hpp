// Deterministic workload generators shared by tests, examples and the
// benchmark harness.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace hmm::alg {

/// n uniform words in [lo, hi], reproducible from the seed.
std::vector<Word> random_words(std::int64_t n, std::uint64_t seed,
                               Word lo = -1000, Word hi = 1000);

/// 0, 1, ..., n-1 — handy for tests whose expected results are closed
/// forms.
std::vector<Word> iota_words(std::int64_t n, Word start = 0);

/// A box filter of m ones (moving-window sum when convolved).
std::vector<Word> box_filter(std::int64_t m);

/// A centered difference filter [-1, 0, ..., 0, 1] of length m >= 2.
std::vector<Word> edge_filter(std::int64_t m);

}  // namespace hmm::alg
