// Deterministic workload generators shared by tests, examples and the
// benchmark harness.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace hmm::alg {

/// n uniform words in [lo, hi], reproducible from the seed.
std::vector<Word> random_words(std::int64_t n, std::uint64_t seed,
                               Word lo = -1000, Word hi = 1000);

/// 0, 1, ..., n-1 — handy for tests whose expected results are closed
/// forms.
std::vector<Word> iota_words(std::int64_t n, Word start = 0);

/// A box filter of m ones (moving-window sum when convolved).
std::vector<Word> box_filter(std::int64_t m);

/// A centered difference filter [-1, 0, ..., 0, 1] of length m >= 2.
std::vector<Word> edge_filter(std::int64_t m);

/// Shared immutable workload cache.
///
/// Sweeps run the same (n, seed) input on many machine shapes; without a
/// cache every grid point regenerates (and copies) an identical vector,
/// making sweep setup O(grid points * n) instead of O(distinct
/// workloads).  The cache hands out `shared_ptr<const vector>` to one
/// immutable buffer per distinct key, so concurrent grid points share a
/// single allocation (thread-safe; workers only read).
class WorkloadCache {
 public:
  /// The cached counterpart of alg::random_words: same values for the
  /// same key, one shared buffer per distinct (n, seed, lo, hi).
  std::shared_ptr<const std::vector<Word>> random_words(std::int64_t n,
                                                        std::uint64_t seed,
                                                        Word lo = -1000,
                                                        Word hi = 1000);

  /// Number of distinct workloads generated so far.
  std::size_t size() const;

 private:
  using Key = std::tuple<std::int64_t, std::uint64_t, Word, Word>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const std::vector<Word>>> cache_;
};

}  // namespace hmm::alg
