// Approximate string matching — the paper's companion application [18]
// ("Efficient implementations of the approximate string matching on the
// memory machine models", ICNC 2012).
//
// Problem: for a pattern P of length m and a text T of length n (m << n),
// compute for every text position j the minimum edit distance between P
// and any substring of T ending at j (semi-global alignment):
//
//   D[0][j] = 0,  D[i][0] = i
//   D[i][j] = min( D[i-1][j-1] + (P[i-1] != T[j-1]),
//                  D[i-1][j] + 1, D[i][j-1] + 1 )
//
// Parallelisation: anti-diagonal wavefront — all cells with i + j = k are
// independent.  On a flat UMM every one of the n + m diagonals pays the
// global latency, so T = Θ(mn/w + mnl/p + (n+m)l).  On the HMM each DMM
// computes a text slice in its latency-1 shared memory; a halo of 2m
// columns makes slices exact (D[i][j] only depends on T[j-2i .. j), since
// D[i][j] <= i bounds the witness substring's length by 2i).  That turns
// the per-diagonal latency into 1: T = Θ(n/w + nl/p + (n/d + m) + l).
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/sequential.hpp"

namespace hmm::alg {

struct MachineMatch {
  std::vector<Word> distance;  ///< distance[j] = min edits ending at T[j]
  RunReport report;
};

struct BaselineMatch {
  std::vector<Word> distance;
  Cycle time = 0;
};

/// O(mn) sequential DP (oracle + baseline).
BaselineMatch string_match_sequential(std::span<const Word> pattern,
                                      std::span<const Word> text);

/// Anti-diagonal wavefront on a standalone UMM (global memory only).
MachineMatch string_match_umm(std::span<const Word> pattern,
                              std::span<const Word> text,
                              std::int64_t threads, std::int64_t width,
                              Cycle latency,
                              EngineObserver* observer = nullptr,
                              bool fast_forward = true);

/// Sliced wavefront on the HMM: each DMM owns n/d text positions plus a
/// 2m halo, computes its band in shared memory, and writes its slice of
/// the result back.  Requires n % d == 0.
MachineMatch string_match_hmm(std::span<const Word> pattern,
                              std::span<const Word> text,
                              std::int64_t num_dmms,
                              std::int64_t threads_per_dmm,
                              std::int64_t width, Cycle latency,
                              EngineObserver* observer = nullptr,
                              bool fast_forward = true);

}  // namespace hmm::alg
