#include "alg/convolution.hpp"

#include <algorithm>

#include "alg/device.hpp"
#include "alg/plans.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

namespace {

void check_shapes(std::int64_t m, std::int64_t n, std::int64_t x_len) {
  HMM_REQUIRE(m >= 1 && n >= 1, "convolution: m, n must be >= 1");
  HMM_REQUIRE(x_len == conv_signal_length(m, n),
              "convolution: x must have length n + m - 1");
}

}  // namespace

BaselineConv convolution_sequential(std::span<const Word> a,
                                    std::span<const Word> x) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(x.size()) - m + 1;
  check_shapes(m, n, static_cast<std::int64_t>(x.size()));

  SequentialRam ram(m + static_cast<std::int64_t>(x.size()) + n);
  const Address ax = 0, xx = m, zx = m + static_cast<std::int64_t>(x.size());
  ram.load(ax, a);
  ram.load(xx, x);
  for (Address i = 0; i < n; ++i) {
    Word acc = 0;
    for (std::int64_t j = 0; j < m; ++j) {
      acc += ram.read(ax + j) * ram.read(xx + i + j);
      ram.tick();  // one multiply-add
    }
    ram.write(zx + i, acc);
  }
  return {ram.dump(zx, n), ram.time()};
}

BaselineConv convolution_pram(std::span<const Word> a,
                              std::span<const Word> x,
                              std::int64_t processors) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(x.size()) - m + 1;
  check_shapes(m, n, static_cast<std::int64_t>(x.size()));
  HMM_REQUIRE(processors >= 1, "convolution: processors must be >= 1");
  const bool teams = processors > n;
  HMM_REQUIRE(!teams || processors % n == 0,
              "convolution: p > n requires p to be a multiple of n");
  const std::int64_t k = teams ? processors / n : 1;
  const std::int64_t chunk = ceil_div(m, k);

  // Memory: a, x, then k partial rows of n cells each (row 0 becomes z).
  Pram pram(processors, m + static_cast<std::int64_t>(x.size()) + k * n,
            Pram::Mode::kCrcw);  // a[j] is read concurrently (CREW)
  const Address ax = 0, xx = m, sx = m + static_cast<std::int64_t>(x.size());
  pram.load(ax, a);
  pram.load(xx, x);

  // Each (team b, output i) accumulates its tap chunk; one parallel step
  // per tap keeps the unit-cost charging honest: chunk * ceil(kn/p)
  // = chunk * ceil(n*k/(n*k)) ... = m/k steps when p = kn, i.e. mn/p.
  for (std::int64_t jj = 0; jj < chunk; ++jj) {
    pram.parallel_step(k * n, [&](std::int64_t item, PramAccess& acc) {
      const std::int64_t b = item / n;
      const std::int64_t i = item % n;
      const std::int64_t j = b * chunk + jj;
      if (j >= std::min(m, (b + 1) * chunk)) return;
      const Word prev = jj == 0 ? 0 : acc.read(sx + b * n + i);
      acc.write(sx + b * n + i,
                prev + acc.read(ax + j) * acc.read(xx + i + j));
    });
  }

  // Tree-reduce the k partial rows onto row 0.
  std::int64_t rows = k;
  while (rows > 1) {
    const std::int64_t half = ceil_div(rows, 2);
    pram.parallel_step((rows - half) * n, [&](std::int64_t c, PramAccess& acc) {
      acc.write(sx + c, acc.read(sx + c) + acc.read(sx + half * n + c));
    });
    rows = half;
  }
  return {pram.dump(sx, n), pram.time()};
}

MachineConv convolution_mm(Machine& machine, MemorySpace space,
                           Address a_base, std::int64_t m, Address x_base,
                           std::int64_t n, Address z_base,
                           Address scratch_base) {
  HMM_REQUIRE(m >= 1 && n >= 1, "convolution: m, n must be >= 1");
  const std::int64_t p = machine.num_threads();
  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    co_await device_convolution(t, space, a_base, m, x_base, n, z_base,
                                scratch_base, t.thread_id(), p,
                                BarrierScope::kMachine);
  });
  BankMemory& mem = space == MemorySpace::kShared ? machine.shared_memory(0)
                                                  : machine.global_memory();
  return {mem.dump(z_base, n), std::move(report)};
}

namespace {

MachineConv convolution_standalone(std::span<const Word> a,
                                   std::span<const Word> x,
                                   std::int64_t threads, std::int64_t width,
                                   Cycle latency, MemorySpace space,
                                   EngineObserver* observer,
                                   bool fast_forward) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(x.size()) - m + 1;
  check_shapes(m, n, static_cast<std::int64_t>(x.size()));
  const std::int64_t k = threads > n ? ceil_div(threads, n) : 1;
  const std::int64_t size =
      m + static_cast<std::int64_t>(x.size()) + n + k * n;
  const Address ax = 0, xx = m, zx = m + static_cast<std::int64_t>(x.size()),
                sx = zx + n;

  Machine machine = space == MemorySpace::kShared
                        ? Machine::dmm(width, latency, threads, size)
                        : Machine::umm(width, latency, threads, size);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  BankMemory& mem = space == MemorySpace::kShared
                        ? machine.shared_memory(0)
                        : machine.global_memory();
  mem.load(ax, a);
  mem.load(xx, x);
  return convolution_mm(machine, space, ax, m, xx, n, zx, sx);
}

}  // namespace

MachineConv convolution_dmm(std::span<const Word> a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency) {
  return convolution_standalone(a, x, threads, width, latency,
                                MemorySpace::kShared, nullptr,
                                /*fast_forward=*/true);
}

MachineConv convolution_umm(std::span<const Word> a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency, EngineObserver* observer,
                            bool fast_forward) {
  return convolution_standalone(a, x, threads, width, latency,
                                MemorySpace::kGlobal, observer, fast_forward);
}

MachineConv convolution_hmm(Machine& machine, std::int64_t m,
                            std::int64_t n) {
  HMM_REQUIRE(m >= 1 && n >= 1, "convolution: m, n must be >= 1");
  HMM_REQUIRE(machine.has_global() && machine.has_shared(),
              "Theorem 9 needs both memories (an HMM)");
  const std::int64_t d = machine.num_dmms();
  HMM_REQUIRE(n % d == 0, "convolution: n must be a multiple of d");
  const std::int64_t slice = n / d;
  HMM_REQUIRE(m <= slice,
              "convolution: Corollary 10 regime requires m <= n/d");

  const std::int64_t x_len = conv_signal_length(m, n);
  const Address g_a = 0, g_x = m, g_z = m + x_len;
  HMM_REQUIRE(machine.global_memory().size() >= m + x_len + n,
              "global memory too small");

  // Shared layout per DMM: a copy of a, the slice + halo of x, the z
  // slice, and the team scratch when p/d > slice.
  const std::int64_t pd = machine.topology().threads_on(0);
  const std::int64_t k = pd > slice ? ceil_div(pd, slice) : 1;
  const std::int64_t slice_x = slice + m - 1;
  const Address s_a = 0, s_x = m, s_z = m + slice_x, s_scratch = s_z + slice;
  HMM_REQUIRE(machine.shared_memory(0).size() >=
                  m + slice_x + slice + k * slice,
              "shared memory too small for the §IX staging layout");
  HMM_REQUIRE(pd <= slice || pd % slice == 0,
              "convolution: p/d > n/d requires (n/d) | (p/d)");

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const Address i0 = t.dmm_id() * slice;  // first output of this DMM

    // Step 1: stage a and x[i0 .. i0 + slice_x) into shared memory.
    co_await device_copy(t, MemorySpace::kShared, s_a, MemorySpace::kGlobal,
                         g_a, m, self, workers);
    co_await device_copy(t, MemorySpace::kShared, s_x, MemorySpace::kGlobal,
                         g_x + i0, slice_x, self, workers);
    co_await t.barrier(BarrierScope::kDmm);

    // Step 2: Theorem-8 convolution entirely inside latency-1 shared
    // memory.
    co_await device_convolution(t, MemorySpace::kShared, s_a, m, s_x, slice,
                                s_z, s_scratch, self, workers,
                                BarrierScope::kDmm);
    co_await t.barrier(BarrierScope::kDmm);

    // Step 3: copy the z slice back to global memory.
    co_await device_copy(t, MemorySpace::kGlobal, g_z + i0,
                         MemorySpace::kShared, s_z, slice, self, workers);
  });
  return {machine.global_memory().dump(g_z, n), std::move(report)};
}

MachineConv convolution_hmm_chunked(std::span<const Word> a,
                                    std::span<const Word> x,
                                    std::int64_t num_dmms,
                                    std::int64_t threads_per_dmm,
                                    std::int64_t width, Cycle latency,
                                    std::int64_t chunk) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(x.size()) - m + 1;
  check_shapes(m, n, static_cast<std::int64_t>(x.size()));
  const std::int64_t d = num_dmms;
  HMM_REQUIRE(d >= 1 && n % d == 0, "convolution: n must be a multiple of d");
  const std::int64_t slice = n / d;
  HMM_REQUIRE(chunk >= 1 && m <= chunk,
              "convolution: chunk must be >= 1 and >= m (the halo must fit)");
  const std::int64_t t_eff = std::min(chunk, slice);
  const std::int64_t pd = threads_per_dmm;
  const std::int64_t k = pd > t_eff ? ceil_div(pd, t_eff) : 1;
  HMM_REQUIRE(pd <= t_eff || pd % t_eff == 0,
              "convolution: p/d > chunk requires chunk | (p/d)");

  // Shared layout: resident filter, one chunk's x window, its z chunk,
  // and the team scratch.  This is what fits a 48KB shared memory even
  // when the slice does not.
  const std::int64_t win = t_eff + m - 1;
  const Address s_a = 0, s_x = m, s_z = m + win, s_scr = s_z + t_eff;
  const std::int64_t shared_size = s_scr + k * t_eff;
  const std::int64_t x_len = conv_signal_length(m, n);
  const Address g_a = 0, g_x = m, g_z = m + x_len;

  Machine machine = Machine::hmm(width, latency, d, pd, shared_size,
                                 m + x_len + n);
  machine.global_memory().load(g_a, a);
  machine.global_memory().load(g_x, x);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const Address base = t.dmm_id() * slice;  // this DMM's first output

    // The filter is staged ONCE and stays resident across chunks.
    co_await device_copy(t, MemorySpace::kShared, s_a, MemorySpace::kGlobal,
                         g_a, m, self, workers);
    co_await t.barrier(BarrierScope::kDmm);

    for (std::int64_t off = 0; off < slice; off += t_eff) {
      const std::int64_t len = std::min(t_eff, slice - off);
      // Stage this chunk's window, convolve at latency 1, write back.
      co_await device_copy(t, MemorySpace::kShared, s_x,
                           MemorySpace::kGlobal, g_x + base + off,
                           len + m - 1, self, workers);
      co_await t.barrier(BarrierScope::kDmm);
      co_await device_convolution(t, MemorySpace::kShared, s_a, m, s_x, len,
                                  s_z, s_scr,
                                  self < len * k ? self : kNoWorker,
                                  std::min(workers, len * k),
                                  BarrierScope::kDmm);
      co_await t.barrier(BarrierScope::kDmm);
      co_await device_copy(t, MemorySpace::kGlobal, g_z + base + off,
                           MemorySpace::kShared, s_z, len, self, workers);
      co_await t.barrier(BarrierScope::kDmm);
    }
  });
  return {machine.global_memory().dump(g_z, n), std::move(report)};
}

MachineConv convolution_hmm(std::span<const Word> a, std::span<const Word> x,
                            std::int64_t num_dmms,
                            std::int64_t threads_per_dmm, std::int64_t width,
                            Cycle latency, EngineObserver* observer,
                            bool fast_forward) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(x.size()) - m + 1;
  check_shapes(m, n, static_cast<std::int64_t>(x.size()));
  HMM_REQUIRE(n % num_dmms == 0, "convolution: n must be a multiple of d");
  const std::int64_t slice = n / num_dmms;
  const std::int64_t k =
      threads_per_dmm > slice ? ceil_div(threads_per_dmm, slice) : 1;
  const std::int64_t shared_size =
      m + (slice + m - 1) + slice + k * slice;
  const std::int64_t global_size = m + conv_signal_length(m, n) + n;

  Machine machine = Machine::hmm(width, latency, num_dmms, threads_per_dmm,
                                 shared_size, global_size);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  machine.global_memory().load(0, a);
  machine.global_memory().load(m, x);
  return convolution_hmm(machine, m, n);
}

// ---- plan twins (plans.hpp) -------------------------------------------------

std::optional<analysis::AccessPlan> build_conv_plan(const PlanPoint& point) {
  const std::int64_t m = point.m;
  const std::int64_t n = point.n;
  HMM_REQUIRE(m >= 1 && n >= 1, "conv plan: m, n must be >= 1");
  const std::int64_t x_len = conv_signal_length(m, n);

  if (point.model == "umm") {
    // convolution_umm layout: a, x, z, scratch.
    const Address ax = 0, xx = m, zx = m + x_len, sx = zx + n;
    HMM_REQUIRE(point.p <= n || point.p % n == 0,
                "conv plan: p > n requires n | p");
    auto plan = analysis::build_access_plan(
        "conv/umm", {point.w, 1, point.p}, [&](analysis::PlanCtx& c) {
          c.set_label("convolve");
          plan_device_convolution(c, MemorySpace::kGlobal, ax, m, xx, n, zx,
                                  sx, c.thread_id(), point.p,
                                  BarrierScope::kMachine);
        });
    plan.claimed_groups = 2;
    return plan;
  }
  if (point.model != "hmm") return std::nullopt;

  const std::int64_t d = point.d;
  HMM_REQUIRE(d >= 1 && n % d == 0, "conv plan: n must be a multiple of d");
  HMM_REQUIRE(point.p % d == 0, "conv plan: d must divide p");
  const std::int64_t slice = n / d;
  const std::int64_t pd = point.p / d;
  HMM_REQUIRE(m <= slice, "conv plan: Corollary 10 regime requires m <= n/d");
  HMM_REQUIRE(pd <= slice || pd % slice == 0,
              "conv plan: p/d > n/d requires (n/d) | (p/d)");
  const std::int64_t slice_x = slice + m - 1;
  const Address g_a = 0, g_x = m, g_z = m + x_len;
  const Address s_a = 0, s_x = m, s_z = m + slice_x, s_scratch = s_z + slice;

  auto plan = analysis::build_access_plan(
      "conv/hmm", {point.w, d, pd}, [&](analysis::PlanCtx& c) {
        const std::int64_t self = c.local_thread_id();
        const Address i0 = c.dmm_id() * slice;

        c.set_label("stage-in");
        plan_device_copy(c, MemorySpace::kShared, s_a, MemorySpace::kGlobal,
                         g_a, m, self, pd);
        plan_device_copy(c, MemorySpace::kShared, s_x, MemorySpace::kGlobal,
                         g_x + i0, slice_x, self, pd);
        c.barrier(BarrierScope::kDmm);

        c.set_label("convolve");
        plan_device_convolution(c, MemorySpace::kShared, s_a, m, s_x, slice,
                                s_z, s_scratch, self, pd, BarrierScope::kDmm);
        c.barrier(BarrierScope::kDmm);

        c.set_label("stage-out");
        plan_device_copy(c, MemorySpace::kGlobal, g_z + i0,
                         MemorySpace::kShared, s_z, slice, self, pd);
      });
  plan.claimed_degree = 1;
  // The z region starts at m + (n + m - 1): one cell short of a group
  // boundary whenever w | 2m, so the write-back batches straddle two
  // groups.  That is the §IX layout, not an accident — claim 2.
  plan.claimed_groups = 2;
  return plan;
}

}  // namespace hmm::alg
