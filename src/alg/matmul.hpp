// Dense matrix multiplication C = A * B on the memory machine models —
// the motivating GPU workload of the paper's introduction (§I cites GPU
// computing applications throughout), and the cleanest showcase of why
// the HMM's two-level memory matters: the naive kernel reads every
// operand r times from the latency-l global memory, while the tiled
// kernel stages t x t blocks into the latency-1 shared memories and
// reuses each staged word t times.
//
//   naive UMM:  T = Θ(r^3/w + r^3 l/p + l)          (2r^3 global words)
//   tiled HMM:  T = Θ(r^3/(dw) + r^3/(tw) + r^3 l/(tp) + l)
//                                                    (2r^3/t global words)
//
// All matrices are r x r row-major.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/sequential.hpp"

namespace hmm::alg {

struct MachineMatmul {
  std::vector<Word> c;
  RunReport report;
};

struct BaselineMatmul {
  std::vector<Word> c;
  Cycle time = 0;
};

/// O(r^3) sequential triple loop (oracle + baseline).
BaselineMatmul matmul_sequential(std::span<const Word> a,
                                 std::span<const Word> b, std::int64_t rows);

/// Naive kernel on a standalone UMM: one virtual thread per C cell
/// (strip-mined), every operand fetched from global memory.  Coalesced
/// (A broadcasts per warp, B rows are contiguous) but reuse-free.
MachineMatmul matmul_umm(std::span<const Word> a, std::span<const Word> b,
                         std::int64_t rows, std::int64_t threads,
                         std::int64_t width, Cycle latency,
                         EngineObserver* observer = nullptr,
                         bool fast_forward = true);

/// Tiled kernel on the HMM: C is cut into tile x tile blocks dealt
/// round-robin to the DMMs; each DMM sweeps the k-tiles, staging an
/// A-tile and a B-tile into shared memory and multiply-accumulating at
/// latency 1.  DMMs never synchronise with each other (block-independent
/// work), so the global pipeline is the only shared resource.
/// Requires rows % tile == 0.
MachineMatmul matmul_hmm_tiled(std::span<const Word> a,
                               std::span<const Word> b, std::int64_t rows,
                               std::int64_t num_dmms,
                               std::int64_t threads_per_dmm,
                               std::int64_t width, Cycle latency,
                               std::int64_t tile,
                               EngineObserver* observer = nullptr,
                               bool fast_forward = true);

}  // namespace hmm::alg
