// The direct convolution problem (§V, §VIII, §IX) on every model of
// Table I.
//
// Inputs: a filter a of length m and a signal x of length n + m - 1;
// output z of length n with z[i] = sum_{j<m} a[j] * x[i+j] (the paper's
// indexing).  The paper assumes m <= n ("m << n from the practical point
// of view"); the implementations accept any m >= 1 but the HMM variant
// requires m <= n/d (Corollary 10's regime, where each DMM's slice
// dominates the halo).
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/pram.hpp"
#include "machine/sequential.hpp"

namespace hmm::alg {

struct MachineConv {
  std::vector<Word> z;
  RunReport report;
};

struct BaselineConv {
  std::vector<Word> z;
  Cycle time = 0;
};

/// Length x must have for a given (m, n).
constexpr std::int64_t conv_signal_length(std::int64_t m, std::int64_t n) {
  return n + m - 1;
}

/// Reference O(mn) direct convolution with op counting (§V).
BaselineConv convolution_sequential(std::span<const Word> a,
                                    std::span<const Word> x);

/// Lemma 4: O(mn/p + log m) PRAM direct convolution (CREW: a[j] is read
/// concurrently).  Supports any p >= 1; p > n requires n | p.
BaselineConv convolution_pram(std::span<const Word> a,
                              std::span<const Word> x,
                              std::int64_t processors);

/// Theorem 8 on an existing machine: convolve in `space` with all machine
/// threads.  Layout: caller places a at address `a_base`, x at `x_base`;
/// z lands at `z_base`; when p > n a scratch region of (p/n)*n cells at
/// `scratch_base` is used.  Returns z.
MachineConv convolution_mm(Machine& machine, MemorySpace space,
                           Address a_base, std::int64_t m, Address x_base,
                           std::int64_t n, Address z_base,
                           Address scratch_base);

/// Convenience: standalone DMM / UMM sized automatically.
MachineConv convolution_dmm(std::span<const Word> a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency);
MachineConv convolution_umm(std::span<const Word> a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency,
                            EngineObserver* observer = nullptr,
                            bool fast_forward = true);

/// Theorem 9 / Corollary 10: the three-step HMM convolution — stage a and
/// the DMM's signal slice into shared memory, convolve there at latency
/// 1 (re-using the Theorem-8 subroutine), copy the result back.
/// Global layout: a at [0, m), x at [m, m + n+m-1), z at [m + n+m-1, ...).
/// Requires n % d == 0 and m <= n/d.
MachineConv convolution_hmm(Machine& machine, std::int64_t m, std::int64_t n);
MachineConv convolution_hmm(std::span<const Word> a, std::span<const Word> x,
                            std::int64_t num_dmms,
                            std::int64_t threads_per_dmm, std::int64_t width,
                            Cycle latency,
                            EngineObserver* observer = nullptr,
                            bool fast_forward = true);

/// Capacity-aware Theorem 9: real shared memories are tiny (§III: 48KB
/// against a 2GB global memory), so a DMM whose n/d slice does not fit
/// processes it in output chunks of `chunk` cells — the filter stays
/// resident, each chunk stages its x window, convolves at latency 1 and
/// writes back before the next chunk is staged.  Asymptotics are
/// unchanged (every x word is still staged once... plus the m-halo per
/// chunk, an m/chunk overhead factor); shared demand drops from
/// Θ(m + n/d) to Θ(m + chunk).  Requires n % d == 0, chunk >= 1 and
/// m <= chunk (the halo must fit the window).
MachineConv convolution_hmm_chunked(std::span<const Word> a,
                                    std::span<const Word> x,
                                    std::int64_t num_dmms,
                                    std::int64_t threads_per_dmm,
                                    std::int64_t width, Cycle latency,
                                    std::int64_t chunk);

}  // namespace hmm::alg
