// Per-workload symbolic access plans (analysis/static/plan.hpp).
//
// Every span driver that registers here ships a PLAN TWIN — the kernel's
// control flow replayed against a PlanCtx, recording addresses instead
// of executing them — implemented in the same .cpp as the kernel it
// mirrors, plus a dynamic runner that executes the REAL kernel under an
// EngineObserver.  The static analyzer proves conflict-freedom and
// coalescing bounds from the twin; the differential harness
// (analysis/static/diff.hpp) replays every verdict against the dynamic
// AccessChecker to prove twin and kernel agree round-for-round.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/static/plan.hpp"
#include "machine/observer.hpp"
#include "machine/report.hpp"

namespace hmm::alg {

/// One fully resolved operating point of a plan-registered workload.
/// `model` is "hmm"/"umm" for the sweepable algorithms and "dmm" for
/// the shared-memory-only ones (transpose, permute).
struct PlanPoint {
  std::string algorithm;
  std::string model = "hmm";
  std::int64_t n = 65536;
  std::int64_t m = 32;       ///< filter taps (conv) / sweeps (stencil)
  std::int64_t p = 2048;
  std::int64_t w = 32;
  std::int64_t l = 400;
  std::int64_t d = 4;
  std::uint64_t seed = 1;    ///< permutation seed (permute)
};

/// All (algorithm, model) pairs with a registered plan twin.
std::vector<std::pair<std::string, std::string>> registered_plans();

/// Build the symbolic access plan for `point`; nullopt when no twin is
/// registered for (algorithm, model).  Shape violations (e.g. a
/// non-power-of-two sort size) throw the same PreconditionError the
/// kernel itself would.
std::optional<analysis::AccessPlan> build_access_plan(const PlanPoint& point);

/// Execute the REAL workload kernel for `point` on a live machine with
/// `observer` attached — the dynamic side of the differential harness.
RunReport run_plan_workload(const PlanPoint& point, EngineObserver* observer);

// ---------------------------------------------------------------------------
// Symbolic twins of the device subroutines (device.cpp) — building
// blocks for the per-workload twins below.
// ---------------------------------------------------------------------------
void plan_device_copy(analysis::PlanCtx& c, MemorySpace dst_space,
                      Address dst, MemorySpace src_space, Address src,
                      std::int64_t n, std::int64_t self, std::int64_t workers);
void plan_device_tree_sum(analysis::PlanCtx& c, MemorySpace space,
                          Address base, std::int64_t n, std::int64_t self,
                          std::int64_t workers, BarrierScope scope);
void plan_device_convolution(analysis::PlanCtx& c, MemorySpace space,
                             Address a, std::int64_t m, Address x,
                             std::int64_t n, Address z, Address scratch,
                             std::int64_t self, std::int64_t workers,
                             BarrierScope scope);

// ---------------------------------------------------------------------------
// Per-workload plan twins, implemented next to their kernels.  Each
// returns nullopt only for an unregistered model.
// ---------------------------------------------------------------------------
std::optional<analysis::AccessPlan> build_sum_plan(const PlanPoint& point);
std::optional<analysis::AccessPlan> build_scan_plan(const PlanPoint& point);
std::optional<analysis::AccessPlan> build_conv_plan(const PlanPoint& point);
std::optional<analysis::AccessPlan> build_sort_plan(const PlanPoint& point);
std::optional<analysis::AccessPlan> build_transpose_plan(
    const PlanPoint& point, bool skewed);
std::optional<analysis::AccessPlan> build_permute_plan(const PlanPoint& point);
std::optional<analysis::AccessPlan> build_stencil_plan(const PlanPoint& point);

/// Rows of the square matrix a transpose point works on: the largest
/// multiple of w whose square fits in n cells (so default CLI sizes
/// stay sane).  Shared by the twin and the dynamic runner.
std::int64_t transpose_rows_for(const PlanPoint& point);

}  // namespace hmm::alg
