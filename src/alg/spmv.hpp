// Sparse matrix-vector multiplication (CSR) on the memory machine
// models — the canonical IRREGULAR workload, and the sharpest test of
// the model's pricing rules: the row-per-thread ("CSR-scalar") kernel
// reads each row's values with per-thread strides (uncoalesced: up to w
// address groups per warp), while the row-per-warp ("CSR-vector")
// kernel walks each row with whole warps (coalesced) and tree-reduces
// inside the warp.  The famous GPU folklore — scalar wins on short
// rows, vector wins on long rows — falls straight out of the model, and
// bench/ext_spmv measures the crossover.
//
// CSR storage: row_ptr (rows+1), col_idx (nnz), values (nnz), all in
// the machine's memory, plus the dense vector x and the output y.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/sequential.hpp"

namespace hmm::alg {

/// A host-side CSR matrix.
struct CsrMatrix {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int64_t> row_ptr;  ///< size rows+1
  std::vector<std::int64_t> col_idx;  ///< size nnz
  std::vector<Word> values;           ///< size nnz

  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values.size());
  }
};

/// Random band matrix: every row has exactly `row_nnz` entries within a
/// band around the diagonal (reproducible from the seed).
CsrMatrix make_band_matrix(std::int64_t rows, std::int64_t row_nnz,
                           std::int64_t bandwidth, std::uint64_t seed);

struct MachineSpmv {
  std::vector<Word> y;
  RunReport report;
};

struct BaselineSpmv {
  std::vector<Word> y;
  Cycle time = 0;
};

/// O(nnz) sequential oracle with op counting.
BaselineSpmv spmv_sequential(const CsrMatrix& a, std::span<const Word> x);

/// CSR-scalar on a standalone UMM: one thread per row.  Row lengths
/// diverge and each thread walks its own value stream — uncoalesced.
MachineSpmv spmv_umm_scalar(const CsrMatrix& a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency);

/// CSR-vector on a standalone UMM: one warp per row; the warp reads w
/// consecutive entries per step (coalesced) and reduces the partials
/// with a register shuffle priced as log w compute steps plus one
/// coalesced store.
MachineSpmv spmv_umm_vector(const CsrMatrix& a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency);

/// HMM: each DMM owns a block of rows, stages x once into its shared
/// memory (paying n/w once instead of per-access gather latency), and
/// runs the vector kernel against shared x.  Requires cols to fit the
/// shared memory.
MachineSpmv spmv_hmm(const CsrMatrix& a, std::span<const Word> x,
                     std::int64_t num_dmms, std::int64_t threads_per_dmm,
                     std::int64_t width, Cycle latency);

}  // namespace hmm::alg
