#include "alg/prefix_sums.hpp"

#include <algorithm>

#include "alg/device.hpp"
#include "alg/plans.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

namespace {

/// Sizes of the compacted levels 1..K (level 0 is the data itself;
/// level K has one cell).
std::vector<std::int64_t> level_sizes(std::int64_t n) {
  std::vector<std::int64_t> sizes;
  std::int64_t s = n;
  while (s > 1) {
    s = ceil_div(s, 2);
    sizes.push_back(s);
  }
  return sizes;
}

}  // namespace

std::int64_t prefix_sums_scratch_size(std::int64_t n) {
  HMM_REQUIRE(n >= 1, "prefix sums: n must be >= 1");
  std::int64_t total = 0;
  for (std::int64_t s : level_sizes(n)) total += s;
  return total;
}

SubTask device_prefix_sums(ThreadCtx& t, MemorySpace space, Address base,
                           std::int64_t n, Address scratch, std::int64_t self,
                           std::int64_t workers, BarrierScope scope) {
  HMM_REQUIRE(n >= 1 && workers >= 1, "prefix sums: n>=1, workers>=1");
  if (n == 1) co_return;  // a[0] is already its own inclusive prefix

  const std::vector<std::int64_t> sizes = level_sizes(n);
  const auto levels = static_cast<std::int64_t>(sizes.size());

  // Level bases: level 0 lives at `base`; levels 1.. in the scratch.
  std::vector<Address> level_base(static_cast<std::size_t>(levels) + 1);
  level_base[0] = base;
  Address cursor = scratch;
  for (std::int64_t k = 1; k <= levels; ++k) {
    level_base[static_cast<std::size_t>(k)] = cursor;
    cursor += sizes[static_cast<std::size_t>(k - 1)];
  }
  auto size_of = [&](std::int64_t k) {
    return k == 0 ? n : sizes[static_cast<std::size_t>(k - 1)];
  };

  // ---- up-sweep: L_{k+1}[i] = L_k[2i] (+ L_k[2i+1] when it exists) ----
  for (std::int64_t k = 0; k < levels; ++k) {
    co_await t.barrier(scope);
    const Address src = level_base[static_cast<std::size_t>(k)];
    const Address dst = level_base[static_cast<std::size_t>(k + 1)];
    const std::int64_t nk = size_of(k);
    const std::int64_t nk1 = size_of(k + 1);
    if (self != kNoWorker) {
      for (Address i = self; i < nk1; i += workers) {
        const Word a = co_await t.read(space, src + 2 * i);
        Word v = a;
        if (2 * i + 1 < nk) {
          const Word b = co_await t.read(space, src + 2 * i + 1);
          co_await t.compute();
          v = a + b;
        }
        co_await t.write(space, dst + i, v);
      }
    }
  }

  // ---- down-sweep: exclusive prefixes flow down; the level-0 pass
  // produces INCLUSIVE results in place (each pair is handled by one
  // thread, so the read-before-overwrite of L_k[2i] is race-free) ----
  for (std::int64_t k = levels - 1; k >= 0; --k) {
    co_await t.barrier(scope);
    const Address lk = level_base[static_cast<std::size_t>(k)];
    const Address ek1 = level_base[static_cast<std::size_t>(k + 1)];
    const std::int64_t nk = size_of(k);
    const std::int64_t nk1 = size_of(k + 1);
    const bool top = k + 1 == levels;   // E_top is the single value 0
    const bool leaf = k == 0;           // emit inclusive at the leaves
    if (self != kNoWorker) {
      for (Address i = self; i < nk1; i += workers) {
        const Word e = top ? 0 : co_await t.read(space, ek1 + i);
        const Word a = co_await t.read(space, lk + 2 * i);
        co_await t.compute();
        if (2 * i + 1 < nk) {
          Word right = e + a;
          if (leaf) {
            const Word b = co_await t.read(space, lk + 2 * i + 1);
            co_await t.compute();
            co_await t.write(space, lk + 2 * i, e + a);
            co_await t.write(space, lk + 2 * i + 1, right + b);
          } else {
            co_await t.write(space, lk + 2 * i, e);
            co_await t.write(space, lk + 2 * i + 1, right);
          }
        } else {
          co_await t.write(space, lk + 2 * i, leaf ? e + a : e);
        }
      }
    }
  }
  co_await t.barrier(scope);
}

BaselineScan prefix_sums_sequential(std::span<const Word> input) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(n >= 1, "prefix sums: n must be >= 1");
  SequentialRam ram(n);
  ram.load(0, input);
  Word acc = 0;
  for (Address i = 0; i < n; ++i) {
    acc += ram.read(i);
    ram.tick();
    ram.write(i, acc);
  }
  return {ram.dump(0, n), ram.time()};
}

BaselineScan prefix_sums_pram(std::span<const Word> input,
                              std::int64_t processors) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(n >= 1, "prefix sums: n must be >= 1");
  HMM_REQUIRE(processors >= 1, "prefix sums: processors must be >= 1");
  const std::int64_t p = std::min(processors, n);
  const std::int64_t c = ceil_div(n, p);  // block size per processor

  // Memory: data, block totals (double-buffered for the Hillis-Steele
  // block scan).
  Pram pram(processors, n + 2 * p, Pram::Mode::kCrcw);
  pram.load(0, input);
  const Address blocks = n, blocks_alt = n + p;

  // 1. Sequential scan inside each block: c - 1 dependent steps.
  for (std::int64_t j = 1; j < c; ++j) {
    pram.parallel_step(p, [&](std::int64_t i, PramAccess& a) {
      const Address at = i * c + j;
      if (at < n) a.write(at, a.read(at) + a.read(at - 1));
    });
  }
  // 2. Hillis-Steele scan of the p block totals: log p steps.
  pram.parallel_step(p, [&](std::int64_t i, PramAccess& a) {
    const Address end = std::min(n, (i + 1) * c) - 1;
    a.write(blocks + i, end >= i * c ? a.read(end) : 0);
  });
  Address cur = blocks, alt = blocks_alt;
  for (std::int64_t off = 1; off < p; off *= 2) {
    pram.parallel_step(p, [&](std::int64_t i, PramAccess& a) {
      const Word v = a.read(cur + i);
      a.write(alt + i, i >= off ? v + a.read(cur + i - off) : v);
    });
    std::swap(cur, alt);
  }
  // 3. Add the previous block's inclusive total as the carry.
  for (std::int64_t j = 0; j < c; ++j) {
    pram.parallel_step(p, [&](std::int64_t i, PramAccess& a) {
      if (i == 0) return;
      const Address at = i * c + j;
      if (at < n) a.write(at, a.read(at) + a.read(cur + i - 1));
    });
  }
  return {pram.dump(0, n), pram.time()};
}

namespace {

MachineScan prefix_sums_standalone(std::span<const Word> input,
                                   std::int64_t threads, std::int64_t width,
                                   Cycle latency, MemorySpace space,
                                   EngineObserver* observer,
                                   bool fast_forward) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(n >= 1, "prefix sums: n must be >= 1");
  const std::int64_t size = n + prefix_sums_scratch_size(n);
  Machine machine = space == MemorySpace::kShared
                        ? Machine::dmm(width, latency, threads, size)
                        : Machine::umm(width, latency, threads, size);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  BankMemory& mem = space == MemorySpace::kShared
                        ? machine.shared_memory(0)
                        : machine.global_memory();
  mem.load(0, input);
  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    co_await device_prefix_sums(t, space, 0, n, n, t.thread_id(), threads,
                                BarrierScope::kMachine);
  });
  return {mem.dump(0, n), std::move(report)};
}

}  // namespace

MachineScan prefix_sums_dmm(std::span<const Word> input, std::int64_t threads,
                            std::int64_t width, Cycle latency) {
  return prefix_sums_standalone(input, threads, width, latency,
                                MemorySpace::kShared, nullptr,
                                /*fast_forward=*/true);
}

MachineScan prefix_sums_umm(std::span<const Word> input, std::int64_t threads,
                            std::int64_t width, Cycle latency,
                            EngineObserver* observer, bool fast_forward) {
  return prefix_sums_standalone(input, threads, width, latency,
                                MemorySpace::kGlobal, observer, fast_forward);
}

MachineScan prefix_sums_hmm(std::span<const Word> input, std::int64_t num_dmms,
                            std::int64_t threads_per_dmm, std::int64_t width,
                            Cycle latency, EngineObserver* observer,
                            bool fast_forward) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(n >= 1, "prefix sums: n must be >= 1");
  HMM_REQUIRE(num_dmms >= 1 && n % num_dmms == 0,
              "prefix sums: n must be a multiple of d");
  const std::int64_t d = num_dmms;
  const std::int64_t c = n / d;  // slice per DMM

  // Shared layout: slice, its scan scratch, then (DMM 0 only) the d block
  // sums and their scan scratch.
  const Address s_slice = 0;
  const Address s_scr = c;
  const Address s_blocks = s_scr + prefix_sums_scratch_size(c);
  const std::int64_t shared_size =
      s_blocks + d + (d > 1 ? prefix_sums_scratch_size(d) : 0);
  // Global layout: data, block sums.
  const std::int64_t global_size = n + d;

  Machine machine = Machine::hmm(width, latency, d, threads_per_dmm,
                                 shared_size, global_size);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  machine.global_memory().load(0, input);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const Address g0 = t.dmm_id() * c;

    // 1. Stage this DMM's slice into shared memory (coalesced).
    co_await device_copy(t, MemorySpace::kShared, s_slice,
                         MemorySpace::kGlobal, g0, c, self, workers);
    co_await t.barrier(BarrierScope::kDmm);

    // 2. Local inclusive scan at latency 1.
    co_await device_prefix_sums(t, MemorySpace::kShared, s_slice, c, s_scr,
                                self, workers, BarrierScope::kDmm);

    // 3. Publish the block total (the slice's last inclusive value).
    if (self == 0) {
      const Word total = co_await t.read(MemorySpace::kShared, s_slice + c - 1);
      co_await t.write(MemorySpace::kGlobal, n + t.dmm_id(), total);
    }
    co_await t.barrier(BarrierScope::kMachine);

    // 4. DMM(0) scans the d block totals in ITS shared memory.
    if (t.dmm_id() == 0) {
      const std::int64_t stagers = std::min(workers, d);
      co_await device_copy(t, MemorySpace::kShared, s_blocks,
                           MemorySpace::kGlobal, n, d,
                           self < stagers ? self : kNoWorker, stagers);
      co_await t.barrier(BarrierScope::kDmm);
      co_await device_prefix_sums(t, MemorySpace::kShared, s_blocks, d,
                                  s_blocks + d, self, workers,
                                  BarrierScope::kDmm);
      co_await device_copy(t, MemorySpace::kGlobal, n, MemorySpace::kShared,
                           s_blocks, d, self < stagers ? self : kNoWorker,
                           stagers);
    }
    co_await t.barrier(BarrierScope::kMachine);

    // 5. Everyone fetches its carry (a broadcast read) and writes the
    // carried slice back, coalesced.
    Word carry = 0;
    if (t.dmm_id() > 0) {
      carry = co_await t.read(MemorySpace::kGlobal, n + t.dmm_id() - 1);
    }
    for (Address i = self; i < c; i += workers) {
      const Word v = co_await t.read(MemorySpace::kShared, s_slice + i);
      co_await t.compute();
      co_await t.write(MemorySpace::kGlobal, g0 + i, v + carry);
    }
  });
  return {machine.global_memory().dump(0, n), std::move(report)};
}

// ---- plan twins (plans.hpp) -------------------------------------------------

namespace {

/// Symbolic device_prefix_sums: identical level layout, loop structure
/// and operation order (including the odd-tail branches).
void plan_device_prefix_sums(analysis::PlanCtx& c, MemorySpace space,
                             Address base, std::int64_t n, Address scratch,
                             std::int64_t self, std::int64_t workers,
                             BarrierScope scope) {
  if (n == 1) return;
  const std::vector<std::int64_t> sizes = level_sizes(n);
  const auto levels = static_cast<std::int64_t>(sizes.size());
  std::vector<Address> level_base(static_cast<std::size_t>(levels) + 1);
  level_base[0] = base;
  Address cursor = scratch;
  for (std::int64_t k = 1; k <= levels; ++k) {
    level_base[static_cast<std::size_t>(k)] = cursor;
    cursor += sizes[static_cast<std::size_t>(k - 1)];
  }
  auto size_of = [&](std::int64_t k) {
    return k == 0 ? n : sizes[static_cast<std::size_t>(k - 1)];
  };

  for (std::int64_t k = 0; k < levels; ++k) {
    c.barrier(scope);
    const Address src = level_base[static_cast<std::size_t>(k)];
    const Address dst = level_base[static_cast<std::size_t>(k + 1)];
    const std::int64_t nk = size_of(k);
    const std::int64_t nk1 = size_of(k + 1);
    if (self != kNoWorker) {
      for (Address i = self; i < nk1; i += workers) {
        c.read(space, src + 2 * i);
        if (2 * i + 1 < nk) {
          c.read(space, src + 2 * i + 1);
          c.compute();
        }
        c.write(space, dst + i);
      }
    }
  }

  for (std::int64_t k = levels - 1; k >= 0; --k) {
    c.barrier(scope);
    const Address lk = level_base[static_cast<std::size_t>(k)];
    const Address ek1 = level_base[static_cast<std::size_t>(k + 1)];
    const std::int64_t nk = size_of(k);
    const std::int64_t nk1 = size_of(k + 1);
    const bool top = k + 1 == levels;
    const bool leaf = k == 0;
    if (self != kNoWorker) {
      for (Address i = self; i < nk1; i += workers) {
        if (!top) c.read(space, ek1 + i);
        c.read(space, lk + 2 * i);
        c.compute();
        if (2 * i + 1 < nk) {
          if (leaf) {
            c.read(space, lk + 2 * i + 1);
            c.compute();
          }
          c.write(space, lk + 2 * i);
          c.write(space, lk + 2 * i + 1);
        } else {
          c.write(space, lk + 2 * i);
        }
      }
    }
  }
  c.barrier(scope);
}

}  // namespace

std::optional<analysis::AccessPlan> build_scan_plan(const PlanPoint& point) {
  const std::int64_t n = point.n;
  HMM_REQUIRE(n >= 1, "scan plan: n must be >= 1");
  if (point.model == "umm") {
    auto plan = analysis::build_access_plan(
        "scan/umm", {point.w, 1, point.p}, [&](analysis::PlanCtx& c) {
          c.set_label("blelloch");
          plan_device_prefix_sums(c, MemorySpace::kGlobal, 0, n, n,
                                  c.thread_id(), point.p,
                                  BarrierScope::kMachine);
        });
    plan.claimed_groups = 2;
    return plan;
  }
  if (point.model != "hmm") return std::nullopt;

  const std::int64_t d = point.d;
  HMM_REQUIRE(d >= 1 && n % d == 0, "scan plan: n must be a multiple of d");
  HMM_REQUIRE(point.p % d == 0, "scan plan: d must divide p");
  const std::int64_t slice = n / d;
  const std::int64_t pd = point.p / d;
  const Address s_slice = 0;
  const Address s_scr = slice;
  const Address s_blocks = s_scr + prefix_sums_scratch_size(slice);
  auto plan = analysis::build_access_plan(
      "scan/hmm", {point.w, d, pd}, [&](analysis::PlanCtx& c) {
        const std::int64_t self = c.local_thread_id();
        const Address g0 = c.dmm_id() * slice;

        c.set_label("stage-in");
        plan_device_copy(c, MemorySpace::kShared, s_slice,
                         MemorySpace::kGlobal, g0, slice, self, pd);
        c.barrier(BarrierScope::kDmm);

        c.set_label("local-scan");
        plan_device_prefix_sums(c, MemorySpace::kShared, s_slice, slice,
                                s_scr, self, pd, BarrierScope::kDmm);

        c.set_label("publish-block-sum");
        if (self == 0) {
          c.read(MemorySpace::kShared, s_slice + slice - 1);
          c.write(MemorySpace::kGlobal, n + c.dmm_id());
        }
        c.barrier(BarrierScope::kMachine);

        if (c.dmm_id() == 0) {
          c.set_label("block-scan");
          const std::int64_t stagers = std::min(pd, d);
          plan_device_copy(c, MemorySpace::kShared, s_blocks,
                           MemorySpace::kGlobal, n, d,
                           self < stagers ? self : kNoWorker, stagers);
          c.barrier(BarrierScope::kDmm);
          plan_device_prefix_sums(c, MemorySpace::kShared, s_blocks, d,
                                  s_blocks + d, self, pd, BarrierScope::kDmm);
          plan_device_copy(c, MemorySpace::kGlobal, n, MemorySpace::kShared,
                           s_blocks, d, self < stagers ? self : kNoWorker,
                           stagers);
        }
        c.barrier(BarrierScope::kMachine);

        c.set_label("carry-and-write-back");
        if (c.dmm_id() > 0) {
          c.read(MemorySpace::kGlobal, n + c.dmm_id() - 1);
        }
        for (Address i = self; i < slice; i += pd) {
          c.read(MemorySpace::kShared, s_slice + i);
          c.compute();
          c.write(MemorySpace::kGlobal, g0 + i);
        }
      });
  plan.claimed_degree = 2;
  plan.claimed_groups = 1;
  return plan;
}

}  // namespace hmm::alg
