// Prefix sums (scan) — the companion result the paper cites as [17]
// ("An optimal parallel prefix-sums algorithm on the memory machine
// models for GPUs", ICA3PP 2012): inclusive prefix sums in
// O(n/w + nl/p + l log n) time on the DMM/UMM, and the Theorem-7-style
// HMM version in O(n/w + nl/p + l + log n).
//
// Implementation: a work-efficient Blelloch scan over LEVEL-COMPACTED
// arrays.  Classic in-place Blelloch strides by 2^k and pays min(2^k, w)
// bank conflicts per warp; storing each level contiguously caps every
// access at stride 2 — at most 2 banks / 2 address groups per warp —
// which preserves the contiguous-access bound up to a factor of 2.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/pram.hpp"
#include "machine/sequential.hpp"
#include "machine/task.hpp"
#include "machine/thread_ctx.hpp"

namespace hmm::alg {

struct MachineScan {
  std::vector<Word> prefix;  ///< inclusive prefix sums
  RunReport report;
};

struct BaselineScan {
  std::vector<Word> prefix;
  Cycle time = 0;
};

/// Scratch cells device_prefix_sums needs beyond the data itself
/// (the compacted levels 1..log n).
std::int64_t prefix_sums_scratch_size(std::int64_t n);

/// Device-side inclusive scan of A[base..base+n) in `space`, scratch at
/// `scratch` (>= prefix_sums_scratch_size(n) cells).  Collective over
/// `scope`; self/workers as in device.hpp.
SubTask device_prefix_sums(ThreadCtx& t, MemorySpace space, Address base,
                           std::int64_t n, Address scratch, std::int64_t self,
                           std::int64_t workers, BarrierScope scope);

/// O(n) sequential scan (oracle + Table-row baseline).
BaselineScan prefix_sums_sequential(std::span<const Word> input);

/// O(n/p + log n) PRAM scan (CREW).
BaselineScan prefix_sums_pram(std::span<const Word> input,
                              std::int64_t processors);

/// The [17] bound on a standalone DMM / UMM: O(n/w + nl/p + l log n).
MachineScan prefix_sums_dmm(std::span<const Word> input, std::int64_t threads,
                            std::int64_t width, Cycle latency);
MachineScan prefix_sums_umm(std::span<const Word> input, std::int64_t threads,
                            std::int64_t width, Cycle latency,
                            EngineObserver* observer = nullptr,
                            bool fast_forward = true);

/// HMM version: stage slices into the latency-1 shared memories, scan
/// locally, scan the d block sums on DMM(0), add carries, copy back —
/// O(n/w + nl/p + l + log n).  Requires n % d == 0.
MachineScan prefix_sums_hmm(std::span<const Word> input, std::int64_t num_dmms,
                            std::int64_t threads_per_dmm, std::int64_t width,
                            Cycle latency, EngineObserver* observer = nullptr,
                            bool fast_forward = true);

}  // namespace hmm::alg
