#include "alg/transpose.hpp"

#include <algorithm>
#include <cmath>

#include "alg/plans.hpp"
#include "core/error.hpp"

namespace hmm::alg {

namespace {

void check_matrix(std::span<const Word> matrix, std::int64_t rows) {
  HMM_REQUIRE(rows >= 1, "transpose: rows must be >= 1");
  HMM_REQUIRE(static_cast<std::int64_t>(matrix.size()) == rows * rows,
              "transpose: matrix must be rows x rows");
}

}  // namespace

MachineTranspose transpose_mm_naive(Machine& machine, std::int64_t rows) {
  HMM_REQUIRE(rows >= 1, "transpose: rows must be >= 1");
  const std::int64_t cells = rows * rows;
  HMM_REQUIRE(2 * cells <= machine.shared_memory(0).size(),
              "transpose: shared memory must hold 2 rows^2 cells");
  const Address out = cells;

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t p = t.num_threads();
    // Output-major sweep: writes are contiguous; the transposed reads are
    // stride-r — ONE bank per warp when w | r.  This is the anti-pattern.
    for (Address idx = t.thread_id(); idx < cells; idx += p) {
      const Address j = idx / rows, i = idx % rows;  // out[j][i] = in[i][j]
      const Word v = co_await t.read(MemorySpace::kShared, i * rows + j);
      co_await t.write(MemorySpace::kShared, out + idx, v);
    }
  });
  return {machine.shared_memory(0).dump(out, cells), std::move(report)};
}

MachineTranspose transpose_dmm_naive(std::span<const Word> matrix,
                                     std::int64_t rows, std::int64_t threads,
                                     std::int64_t width, Cycle latency) {
  check_matrix(matrix, rows);
  Machine machine = Machine::dmm(width, latency, threads, 2 * rows * rows);
  machine.shared_memory(0).load(0, matrix);
  return transpose_mm_naive(machine, rows);
}

MachineTranspose transpose_mm_skewed(Machine& machine, std::int64_t rows) {
  HMM_REQUIRE(rows >= 1, "transpose: rows must be >= 1");
  HMM_REQUIRE(rows % machine.width() == 0,
              "skewed transpose: rows must be a multiple of the width");
  const std::int64_t cells = rows * rows;
  HMM_REQUIRE(3 * cells <= machine.shared_memory(0).size(),
              "skewed transpose: shared memory must hold 3 rows^2 cells");
  const Address skew = cells, out = 2 * cells;

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t p = t.num_threads();
    // Pass 1: skew-store — S[i][(i+j) mod r] = in[i][j].  Consecutive j
    // within a warp lands on consecutive (wrapped) columns: w distinct
    // banks, conflict-free.
    for (Address idx = t.thread_id(); idx < cells; idx += p) {
      const Address i = idx / rows, j = idx % rows;
      const Word v = co_await t.read(MemorySpace::kShared, idx);
      co_await t.write(MemorySpace::kShared,
                       skew + i * rows + (i + j) % rows, v);
    }
    co_await t.barrier();
    // Pass 2: skew-load — out[j][i] = S[i][(i+j) mod r].  Consecutive i
    // within a warp again touches w distinct banks.
    for (Address idx = t.thread_id(); idx < cells; idx += p) {
      const Address j = idx / rows, i = idx % rows;
      const Word v = co_await t.read(MemorySpace::kShared,
                                     skew + i * rows + (i + j) % rows);
      co_await t.write(MemorySpace::kShared, out + idx, v);
    }
  });
  return {machine.shared_memory(0).dump(out, cells), std::move(report)};
}

MachineTranspose transpose_dmm_skewed(std::span<const Word> matrix,
                                      std::int64_t rows, std::int64_t threads,
                                      std::int64_t width, Cycle latency) {
  check_matrix(matrix, rows);
  HMM_REQUIRE(rows % width == 0,
              "skewed transpose: rows must be a multiple of the width");
  Machine machine = Machine::dmm(width, latency, threads, 3 * rows * rows);
  machine.shared_memory(0).load(0, matrix);
  return transpose_mm_skewed(machine, rows);
}

// ---- plan twins (plans.hpp) -------------------------------------------------

std::int64_t transpose_rows_for(const PlanPoint& point) {
  HMM_REQUIRE(point.n >= 1 && point.w >= 1, "transpose plan: n, w must be >= 1");
  auto rows = static_cast<std::int64_t>(
      std::sqrt(static_cast<double>(point.n)));
  while (rows * rows > point.n) --rows;
  rows -= rows % point.w;
  return std::max(rows, point.w);
}

std::optional<analysis::AccessPlan> build_transpose_plan(
    const PlanPoint& point, bool skewed) {
  if (point.model != "dmm") return std::nullopt;
  const std::int64_t rows = transpose_rows_for(point);
  const std::int64_t cells = rows * rows;
  const std::int64_t p = point.p;
  if (skewed) {
    const Address skew = cells, out = 2 * cells;
    auto plan = analysis::build_access_plan(
        "transpose/dmm", {point.w, 1, p}, [&](analysis::PlanCtx& c) {
          c.set_label("skew-store");
          for (Address idx = c.thread_id(); idx < cells; idx += p) {
            const Address i = idx / rows, j = idx % rows;
            c.read(MemorySpace::kShared, idx);
            c.write(MemorySpace::kShared, skew + i * rows + (i + j) % rows);
          }
          c.barrier();
          c.set_label("skew-load");
          for (Address idx = c.thread_id(); idx < cells; idx += p) {
            const Address j = idx / rows, i = idx % rows;
            c.read(MemorySpace::kShared, skew + i * rows + (i + j) % rows);
            c.write(MemorySpace::kShared, out + idx);
          }
        });
    plan.claimed_degree = 1;
    return plan;
  }
  // The naive kernel CLAIMS conflict-freedom — the coalescing-blind
  // assumption the paper's transpose case study refutes.  The analyzer
  // computes the true degree (w when w | rows) and rejects the claim:
  // this is the built-in refutation showcase, priced without a machine.
  const Address out = cells;
  auto plan = analysis::build_access_plan(
      "transpose-naive/dmm", {point.w, 1, p}, [&](analysis::PlanCtx& c) {
        c.set_label("column-gather");
        for (Address idx = c.thread_id(); idx < cells; idx += p) {
          const Address j = idx / rows, i = idx % rows;
          c.read(MemorySpace::kShared, i * rows + j);
          c.write(MemorySpace::kShared, out + idx);
        }
      });
  plan.claimed_degree = 1;
  return plan;
}

}  // namespace hmm::alg
