#include "alg/device.hpp"

#include <algorithm>

#include "alg/plans.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

SubTask device_contiguous_read(ThreadCtx& t, MemorySpace space, Address base,
                               std::int64_t n, std::int64_t self,
                               std::int64_t workers) {
  HMM_REQUIRE(n >= 0 && workers >= 1, "contiguous read: n>=0, workers>=1");
  if (self == kNoWorker) co_return;
  for (Address i = self; i < n; i += workers) {
    co_await t.read(space, base + i);
  }
}

SubTask device_copy(ThreadCtx& t, MemorySpace dst_space, Address dst,
                    MemorySpace src_space, Address src, std::int64_t n,
                    std::int64_t self, std::int64_t workers) {
  HMM_REQUIRE(n >= 0 && workers >= 1, "copy: n>=0, workers>=1");
  if (self == kNoWorker) co_return;
  for (Address i = self; i < n; i += workers) {
    const Word v = co_await t.read(src_space, src + i);
    co_await t.write(dst_space, dst + i, v);
  }
}

SubTask device_copy_2d(ThreadCtx& t, MemorySpace dst_space, Address dst,
                       std::int64_t dst_stride, MemorySpace src_space,
                       Address src, std::int64_t src_stride,
                       std::int64_t rows, std::int64_t cols,
                       std::int64_t self, std::int64_t workers) {
  HMM_REQUIRE(rows >= 0 && cols >= 1 && workers >= 1,
              "copy_2d: rows>=0, cols>=1, workers>=1");
  HMM_REQUIRE(dst_stride >= cols && src_stride >= cols,
              "copy_2d: strides must cover the row length");
  if (self == kNoWorker) co_return;
  const std::int64_t cells = rows * cols;
  for (Address c = self; c < cells; c += workers) {
    const std::int64_t r = c / cols, k = c % cols;
    const Word v = co_await t.read(src_space, src + r * src_stride + k);
    co_await t.write(dst_space, dst + r * dst_stride + k, v);
  }
}

SubTask device_tree_sum(ThreadCtx& t, MemorySpace space, Address base,
                        std::int64_t n, std::int64_t self,
                        std::int64_t workers, BarrierScope scope) {
  HMM_REQUIRE(n >= 1 && workers >= 1, "tree sum: n>=1, workers>=1");
  // Fold the tail A[half .. s) onto A[0 .. s-half): both the reads and the
  // read-modify-writes are contiguous runs (Theorem 2 applies), and the
  // level count is ceil(log2 n).  The subroutine is fully
  // self-synchronising: a barrier BEFORE each level makes the producers'
  // writes (the caller's, or the previous level's) visible, and a final
  // barrier publishes the total to every thread of the scope.
  std::int64_t s = n;
  while (s > 1) {
    co_await t.barrier(scope);
    const std::int64_t half = ceil_div(s, 2);  // new size
    const std::int64_t folds = s - half;       // elements folded this level
    if (self != kNoWorker) {
      for (Address i = self; i < folds; i += workers) {
        const Word hi = co_await t.read(space, base + half + i);
        const Word lo = co_await t.read(space, base + i);
        co_await t.compute();  // the addition is one RAM time unit
        co_await t.write(space, base + i, lo + hi);
      }
    }
    s = half;
  }
  co_await t.barrier(scope);
}

SubTask device_convolution(ThreadCtx& t, MemorySpace space, Address a,
                           std::int64_t m, Address x, std::int64_t n,
                           Address z, Address scratch, std::int64_t self,
                           std::int64_t workers, BarrierScope scope) {
  HMM_REQUIRE(m >= 1 && n >= 1 && workers >= 1,
              "convolution: m>=1, n>=1, workers>=1");
  const bool teams = workers > n;
  HMM_REQUIRE(!teams || workers % n == 0,
              "convolution: workers > n requires workers to be a multiple "
              "of n (the paper's p/n blocks)");
  const std::int64_t k = teams ? workers / n : 1;
  const std::int64_t chunk = ceil_div(m, k);  // filter taps per team

  if (!teams) {
    // One thread per output (strip-mined when workers < n): thread
    // `self` accumulates z[i] for i = self, self+workers, ...  All
    // threads of a warp read the same a[j] (a broadcast: one stage) and
    // consecutive x[i+j] (contiguous: one stage).
    if (self != kNoWorker) {
      for (Address i = self; i < n; i += workers) {
        Word acc = 0;
        for (std::int64_t j = 0; j < m; ++j) {
          const Word aj = co_await t.read(space, a + j);
          const Word xv = co_await t.read(space, x + i + j);
          co_await t.compute();  // one multiply-add
          acc += aj * xv;
        }
        co_await t.write(space, z + i, acc);
      }
    }
  } else {
    // k = workers/n teams: team b of thread handles filter taps
    // [b*chunk, min((b+1)*chunk, m)).  Thread layout self = b*n + i keeps
    // warps contiguous in i, so x reads stay coalesced and a reads stay
    // broadcast.  Partials land in scratch[b*n + i].
    if (self != kNoWorker) {
      const std::int64_t b = self / n;
      const Address i = self % n;
      const std::int64_t j_begin = b * chunk;
      const std::int64_t j_end = std::min(m, (b + 1) * chunk);
      Word acc = 0;
      for (std::int64_t j = j_begin; j < j_end; ++j) {
        const Word aj = co_await t.read(space, a + j);
        const Word xv = co_await t.read(space, x + i + j);
        co_await t.compute();
        acc += aj * xv;
      }
      co_await t.write(space, scratch + b * n + i, acc);
    }
    co_await t.barrier(scope);

    // Tree-reduce the k partial rows onto row 0; every level folds whole
    // rows, so the accesses stay contiguous (Theorem 2).
    std::int64_t rows = k;
    while (rows > 1) {
      const std::int64_t half = ceil_div(rows, 2);
      const std::int64_t fold_cells = (rows - half) * n;
      if (self != kNoWorker) {
        for (Address c = self; c < fold_cells; c += workers) {
          const Word hi = co_await t.read(space, scratch + half * n + c);
          const Word lo = co_await t.read(space, scratch + c);
          co_await t.compute();
          co_await t.write(space, scratch + c, lo + hi);
        }
      }
      co_await t.barrier(scope);
      rows = half;
    }

    // Row 0 of the scratch is z.
    const std::int64_t copy_self =
        (self == kNoWorker || self >= n) ? kNoWorker : self;
    co_await device_copy(t, space, z, space, scratch, n, copy_self,
                         std::min(workers, n));
  }
}

// ---------------------------------------------------------------------------
// Symbolic twins (plans.hpp): the same control flow as the subroutines
// above, recording operations into a PlanCtx instead of executing them.
// Any edit to a subroutine must be mirrored here — the differential
// harness (analysis/static/diff.hpp) fails loudly when they drift.
// ---------------------------------------------------------------------------

void plan_device_copy(analysis::PlanCtx& c, MemorySpace dst_space,
                      Address dst, MemorySpace src_space, Address src,
                      std::int64_t n, std::int64_t self, std::int64_t workers) {
  if (self == kNoWorker) return;
  for (Address i = self; i < n; i += workers) {
    c.read(src_space, src + i);
    c.write(dst_space, dst + i);
  }
}

void plan_device_tree_sum(analysis::PlanCtx& c, MemorySpace space,
                          Address base, std::int64_t n, std::int64_t self,
                          std::int64_t workers, BarrierScope scope) {
  std::int64_t s = n;
  while (s > 1) {
    c.barrier(scope);
    const std::int64_t half = ceil_div(s, 2);
    const std::int64_t folds = s - half;
    if (self != kNoWorker) {
      for (Address i = self; i < folds; i += workers) {
        c.read(space, base + half + i);
        c.read(space, base + i);
        c.compute();
        c.write(space, base + i);
      }
    }
    s = half;
  }
  c.barrier(scope);
}

void plan_device_convolution(analysis::PlanCtx& c, MemorySpace space,
                             Address a, std::int64_t m, Address x,
                             std::int64_t n, Address z, Address scratch,
                             std::int64_t self, std::int64_t workers,
                             BarrierScope scope) {
  const bool teams = workers > n;
  HMM_REQUIRE(!teams || workers % n == 0,
              "convolution plan: workers > n requires workers to be a "
              "multiple of n");
  const std::int64_t k = teams ? workers / n : 1;
  const std::int64_t chunk = ceil_div(m, k);

  if (!teams) {
    if (self != kNoWorker) {
      for (Address i = self; i < n; i += workers) {
        for (std::int64_t j = 0; j < m; ++j) {
          c.read(space, a + j);
          c.read(space, x + i + j);
          c.compute();
        }
        c.write(space, z + i);
      }
    }
  } else {
    if (self != kNoWorker) {
      const std::int64_t b = self / n;
      const Address i = self % n;
      const std::int64_t j_begin = b * chunk;
      const std::int64_t j_end = std::min(m, (b + 1) * chunk);
      for (std::int64_t j = j_begin; j < j_end; ++j) {
        c.read(space, a + j);
        c.read(space, x + i + j);
        c.compute();
      }
      c.write(space, scratch + b * n + i);
    }
    c.barrier(scope);

    std::int64_t rows = k;
    while (rows > 1) {
      const std::int64_t half = ceil_div(rows, 2);
      const std::int64_t fold_cells = (rows - half) * n;
      if (self != kNoWorker) {
        for (Address cell = self; cell < fold_cells; cell += workers) {
          c.read(space, scratch + half * n + cell);
          c.read(space, scratch + cell);
          c.compute();
          c.write(space, scratch + cell);
        }
      }
      c.barrier(scope);
      rows = half;
    }

    const std::int64_t copy_self =
        (self == kNoWorker || self >= n) ? kNoWorker : self;
    plan_device_copy(c, space, z, space, scratch, n, copy_self,
                     std::min(workers, n));
  }
}

}  // namespace hmm::alg
