// Bitonic sort on the memory machine models — the sorting network of the
// GPU era the paper models (oblivious, branch-free, and every one of its
// compare-exchange stages is a contiguous-run access pattern, i.e. the
// kind of algorithm the DMM/UMM reward).
//
// A stage (k, j) pairs element i with i ^ j; the active lower indices
// form contiguous runs of length j, so a warp's reads and writes touch
// at most two address groups / no conflicting banks: every stage costs
// Θ(n/w + nl/p + l) by Theorem 2, and the full network has
// log n (log n + 1)/2 stages:
//
//   UMM:  T = Θ((n/w + nl/p + l) log^2 n)
//   HMM:  all stages with stride < n/d run inside the latency-1 shared
//         memories (each DMM owns an aligned block); only the
//         O(log^2 d) cross-DMM stages touch global memory:
//         T = Θ((n/w + nl/p) log^2 n + l log^2 d + ...)
//
// n must be a power of two (the classic bitonic restriction); the HMM
// variant additionally needs d and n/d to be powers of two.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"

namespace hmm::alg {

struct MachineSort {
  std::vector<Word> sorted;
  RunReport report;
};

/// Bitonic sort entirely in one address space (standalone DMM or UMM).
MachineSort sort_dmm(std::span<const Word> input, std::int64_t threads,
                     std::int64_t width, Cycle latency);
MachineSort sort_umm(std::span<const Word> input, std::int64_t threads,
                     std::int64_t width, Cycle latency,
                     EngineObserver* observer = nullptr,
                     bool fast_forward = true);

/// Same, on an existing machine (e.g. one carrying an AccessChecker):
/// sorts the n words the caller loaded at [0, n) of `space` in place.
MachineSort sort_mm(Machine& machine, MemorySpace space, std::int64_t n);

/// Hybrid HMM bitonic sort: each DMM owns the aligned n/d block of the
/// array; stages with stride < n/d run in shared memory, cross-block
/// stages run on global memory.
MachineSort sort_hmm(std::span<const Word> input, std::int64_t num_dmms,
                     std::int64_t threads_per_dmm, std::int64_t width,
                     Cycle latency, EngineObserver* observer = nullptr,
                     bool fast_forward = true);

/// Same, on an existing HMM with the input loaded at global [0, n);
/// shared memories must hold n/d cells.
MachineSort sort_hmm(Machine& machine, std::int64_t n);

}  // namespace hmm::alg
