#include "alg/string_match.hpp"

#include <algorithm>

#include "alg/device.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

namespace {

void check_inputs(std::span<const Word> pattern, std::span<const Word> text) {
  HMM_REQUIRE(!pattern.empty(), "string match: pattern must be non-empty");
  HMM_REQUIRE(!text.empty(), "string match: text must be non-empty");
  HMM_REQUIRE(pattern.size() <= text.size(),
              "string match: pattern longer than text");
}

/// Row stride for the DP table: padded so that (cols - 1) is odd, which
/// makes the anti-diagonal access pattern (stride cols - 1 across
/// threads) hit distinct banks for any power-of-two width.
std::int64_t padded_cols(std::int64_t text_len) {
  const std::int64_t cols = text_len + 1;
  return cols % 2 == 0 ? cols + 1 : cols;
}

/// The anti-diagonal wavefront over one DP band, in `space`.
/// Table is (m+1) x cols row-major at `table`; text of `text_len` words
/// at `txt`; pattern of m words at `pat`.  Collective over `scope`.
SubTask device_asm_band(ThreadCtx& t, MemorySpace space, Address pat,
                        std::int64_t m, Address txt, std::int64_t text_len,
                        Address table, std::int64_t cols, std::int64_t self,
                        std::int64_t workers, BarrierScope scope) {
  // Borders: D[0][j] = 0 (any substring may start here), D[i][0] = i.
  if (self != kNoWorker) {
    for (Address j = self; j <= text_len; j += workers) {
      co_await t.write(space, table + j, 0);
    }
    for (Address i = 1 + self; i <= m; i += workers) {
      co_await t.write(space, table + i * cols, i);
    }
  }
  co_await t.barrier(scope);

  // Wavefront: cells (i, j) with i + j = diag are independent.
  for (std::int64_t diag = 2; diag <= m + text_len; ++diag) {
    const std::int64_t lo = std::max<std::int64_t>(1, diag - text_len);
    const std::int64_t hi = std::min<std::int64_t>(m, diag - 1);
    if (self != kNoWorker) {
      for (std::int64_t i = lo + self; i <= hi; i += workers) {
        const std::int64_t j = diag - i;
        const Word pc = co_await t.read(space, pat + i - 1);
        const Word tc = co_await t.read(space, txt + j - 1);
        const Word up_left =
            co_await t.read(space, table + (i - 1) * cols + j - 1);
        const Word up = co_await t.read(space, table + (i - 1) * cols + j);
        const Word left = co_await t.read(space, table + i * cols + j - 1);
        co_await t.compute();  // the three-way min + mismatch test
        const Word best = std::min({up_left + (pc != tc ? 1 : 0), up + 1,
                                    left + 1});
        co_await t.write(space, table + i * cols + j, best);
      }
    }
    co_await t.barrier(scope);
  }
}

}  // namespace

BaselineMatch string_match_sequential(std::span<const Word> pattern,
                                      std::span<const Word> text) {
  check_inputs(pattern, text);
  const auto m = static_cast<std::int64_t>(pattern.size());
  const auto n = static_cast<std::int64_t>(text.size());

  SequentialRam ram(m + n + 2 * (n + 1));
  const Address pat = 0, txt = m, prev = m + n, cur = prev + (n + 1);
  ram.load(pat, pattern);
  ram.load(txt, text);
  // Row 0 = 0.
  for (Address j = 0; j <= n; ++j) ram.write(prev + j, 0);
  Address row_prev = prev, row_cur = cur;
  for (std::int64_t i = 1; i <= m; ++i) {
    ram.write(row_cur, i);
    for (std::int64_t j = 1; j <= n; ++j) {
      const Word pc = ram.read(pat + i - 1);
      const Word tc = ram.read(txt + j - 1);
      const Word best = std::min({ram.read(row_prev + j - 1) + (pc != tc),
                                  ram.read(row_prev + j) + 1,
                                  ram.read(row_cur + j - 1) + 1});
      ram.tick();
      ram.write(row_cur + j, best);
    }
    std::swap(row_prev, row_cur);
  }
  std::vector<Word> out = ram.dump(row_prev + 1, n);
  return {std::move(out), ram.time()};
}

MachineMatch string_match_umm(std::span<const Word> pattern,
                              std::span<const Word> text,
                              std::int64_t threads, std::int64_t width,
                              Cycle latency, EngineObserver* observer,
                              bool fast_forward) {
  check_inputs(pattern, text);
  const auto m = static_cast<std::int64_t>(pattern.size());
  const auto n = static_cast<std::int64_t>(text.size());
  const std::int64_t cols = padded_cols(n);
  const std::int64_t size = m + n + (m + 1) * cols;
  const Address pat = 0, txt = m, table = m + n;

  Machine machine = Machine::umm(width, latency, threads, size);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  machine.global_memory().load(pat, pattern);
  machine.global_memory().load(txt, text);
  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    co_await device_asm_band(t, MemorySpace::kGlobal, pat, m, txt, n, table,
                             cols, t.thread_id(), t.num_threads(),
                             BarrierScope::kMachine);
  });
  return {machine.global_memory().dump(table + m * cols + 1, n),
          std::move(report)};
}

MachineMatch string_match_hmm(std::span<const Word> pattern,
                              std::span<const Word> text,
                              std::int64_t num_dmms,
                              std::int64_t threads_per_dmm,
                              std::int64_t width, Cycle latency,
                              EngineObserver* observer, bool fast_forward) {
  check_inputs(pattern, text);
  const auto m = static_cast<std::int64_t>(pattern.size());
  const auto n = static_cast<std::int64_t>(text.size());
  const std::int64_t d = num_dmms;
  HMM_REQUIRE(d >= 1 && n % d == 0, "string match: n must be a multiple of d");
  const std::int64_t c = n / d;

  // Each DMM's window: its slice plus a 2m-column halo on the left
  // (D[i][j] <= i bounds the witness length by 2i, so the halo makes the
  // sliced DP exact on the slice's columns).
  const std::int64_t max_wl = c + 2 * m;  // worst-case window length
  const std::int64_t cols = padded_cols(max_wl);
  const Address s_pat = 0, s_txt = m, s_table = m + max_wl;
  const std::int64_t shared_size = s_table + (m + 1) * cols;
  const Address g_pat = 0, g_txt = m, g_out = m + n;
  const std::int64_t global_size = m + n + n;

  Machine machine = Machine::hmm(width, latency, d, threads_per_dmm,
                                 shared_size, global_size);
  machine.set_observer(observer);
  machine.set_fast_forward(fast_forward);
  machine.global_memory().load(g_pat, pattern);
  machine.global_memory().load(g_txt, text);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const std::int64_t slice0 = t.dmm_id() * c;          // first text pos
    const Address ws = std::max<std::int64_t>(0, slice0 - 2 * m);
    const std::int64_t wl = slice0 + c - ws;             // window length

    // Stage pattern and window (both coalesced).
    co_await device_copy(t, MemorySpace::kShared, s_pat, MemorySpace::kGlobal,
                         g_pat, m, self, workers);
    co_await device_copy(t, MemorySpace::kShared, s_txt, MemorySpace::kGlobal,
                         g_txt + ws, wl, self, workers);
    co_await t.barrier(BarrierScope::kDmm);

    // Wavefront entirely inside latency-1 shared memory.
    co_await device_asm_band(t, MemorySpace::kShared, s_pat, m, s_txt, wl,
                             s_table, cols, self, workers,
                             BarrierScope::kDmm);

    // Write back this slice of row m: text position slice0 + k lives at
    // window column (slice0 + k - ws) + 1.
    const Address row_m = s_table + m * cols;
    for (Address k = self; k < c; k += workers) {
      const Word v =
          co_await t.read(MemorySpace::kShared, row_m + (slice0 + k - ws) + 1);
      co_await t.write(MemorySpace::kGlobal, g_out + slice0 + k, v);
    }
  });
  return {machine.global_memory().dump(g_out, n), std::move(report)};
}

}  // namespace hmm::alg
