// Offline permutation on the DMM — the companion result the paper cites
// as [13]/[19]: given a permutation pi known in advance, move
// dst[pi(i)] = src[i] for all i in O(n/w + l) time with ZERO bank
// conflicts, no matter how adversarial pi is.
//
// The naive kernel (thread reads src[i], writes dst[pi(i)]) is priced by
// the destination banks: a permutation that sends a whole warp to one
// bank costs w stages per write batch.  The conflict-free schedule
// builds the w x w bipartite multigraph "source bank -> destination
// bank" (one edge per element; it is (n/w)-regular when w | n), edge-
// colours it into n/w perfect matchings (core/bipartite.hpp), and
// executes one matching per round: every round's w reads hit w distinct
// source banks and its w writes hit w distinct destination banks.
//
// The schedule is computed host-side — this is an OFFLINE permutation,
// exactly as in [19], where the schedule is prepared once and reused.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"

namespace hmm::alg {

struct MachinePermutation {
  std::vector<Word> out;  ///< out[perm[i]] = in[i]
  RunReport report;
};

/// One precomputed conflict-free schedule: rounds x w element indices.
/// Reusable across inputs (the point of "offline").
class PermutationSchedule {
 public:
  /// Build the schedule for `perm` (a permutation of [0, n), w | n).
  PermutationSchedule(std::span<const std::int64_t> perm, std::int64_t width);

  std::int64_t n() const { return n_; }
  std::int64_t width() const { return width_; }
  std::int64_t rounds() const {
    return static_cast<std::int64_t>(rounds_.size());
  }

  /// Element moved by lane `lane` in round `round`.
  std::int64_t element(std::int64_t round, std::int64_t lane) const;
  /// Its destination, perm[element].
  std::int64_t destination(std::int64_t round, std::int64_t lane) const;

 private:
  std::int64_t n_;
  std::int64_t width_;
  std::vector<std::vector<std::int64_t>> rounds_;  // element indices
  std::vector<std::int64_t> perm_;
};

/// Naive online permutation on a standalone DMM: contiguous reads,
/// destination-designated writes (pays whatever conflicts pi causes).
MachinePermutation permute_dmm_naive(std::span<const Word> input,
                                     std::span<const std::int64_t> perm,
                                     std::int64_t threads, std::int64_t width,
                                     Cycle latency);

/// Conflict-free offline permutation using a precomputed schedule;
/// one warp of `width` threads executes one matching per round.
MachinePermutation permute_dmm_offline(std::span<const Word> input,
                                       const PermutationSchedule& schedule,
                                       Cycle latency);

/// Machine-taking cores (e.g. for attaching an AccessChecker before the
/// run): the n input words must already sit at shared [0, n); the result
/// is written to [n, 2n).  The machine width must match the schedule /
/// divide n as for the span-taking variants.
MachinePermutation permute_mm_naive(Machine& machine,
                                    std::span<const std::int64_t> perm);
MachinePermutation permute_mm_offline(Machine& machine,
                                      const PermutationSchedule& schedule);

/// Adversarial permutation that routes every warp-aligned block of w
/// consecutive sources to ONE destination bank — the worst case for the
/// naive kernel (w-way write conflicts on every batch).
std::vector<std::int64_t> bank_crushing_permutation(std::int64_t n,
                                                    std::int64_t width);

/// Uniformly random permutation of [0, n) from a seed.
std::vector<std::int64_t> random_permutation(std::int64_t n,
                                             std::uint64_t seed);

}  // namespace hmm::alg
