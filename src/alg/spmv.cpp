#include "alg/spmv.hpp"

#include <algorithm>

#include "alg/device.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"
#include "core/rng.hpp"

namespace hmm::alg {

namespace {

void check_csr(const CsrMatrix& a, std::span<const Word> x) {
  HMM_REQUIRE(a.rows >= 1 && a.cols >= 1, "spmv: empty matrix");
  HMM_REQUIRE(static_cast<std::int64_t>(a.row_ptr.size()) == a.rows + 1,
              "spmv: row_ptr must have rows+1 entries");
  HMM_REQUIRE(a.row_ptr.front() == 0 && a.row_ptr.back() == a.nnz(),
              "spmv: row_ptr must span [0, nnz]");
  HMM_REQUIRE(a.col_idx.size() == a.values.size(), "spmv: ragged CSR");
  HMM_REQUIRE(static_cast<std::int64_t>(x.size()) == a.cols,
              "spmv: x must have cols entries");
  for (std::size_t r = 0; r < a.row_ptr.size() - 1; ++r) {
    HMM_REQUIRE(a.row_ptr[r] <= a.row_ptr[r + 1], "spmv: row_ptr not sorted");
  }
  for (std::int64_t c : a.col_idx) {
    HMM_REQUIRE(c >= 0 && c < a.cols, "spmv: column index out of range");
  }
}

/// Device-side layout of one CSR instance in a memory space.
struct CsrLayout {
  Address row_ptr, col_idx, values, x, y, scratch;
  std::int64_t total = 0;

  CsrLayout(const CsrMatrix& a, std::int64_t scratch_cells) {
    row_ptr = 0;
    col_idx = row_ptr + a.rows + 1;
    values = col_idx + a.nnz();
    x = values + a.nnz();
    y = x + a.cols;
    scratch = y + a.rows;
    total = scratch + scratch_cells;
  }
};

void load_csr(BankMemory& mem, const CsrMatrix& a, std::span<const Word> x,
              const CsrLayout& lay) {
  for (std::size_t i = 0; i < a.row_ptr.size(); ++i) {
    mem.poke(lay.row_ptr + static_cast<Address>(i), a.row_ptr[i]);
  }
  for (std::size_t i = 0; i < a.col_idx.size(); ++i) {
    mem.poke(lay.col_idx + static_cast<Address>(i), a.col_idx[i]);
  }
  mem.load(lay.values, a.values);
  mem.load(lay.x, x);
}

/// Butterfly reduction of one register value across a warp, through a
/// per-warp w-cell scratch block.  Warp-synchronous lockstep makes the
/// write->read ordering safe without barriers; every round's accesses
/// are contiguous.  Returns the warp total (identical on all lanes).
SubTask device_warp_reduce(ThreadCtx& t, MemorySpace space, Address block,
                           Word* acc) {
  // Lanes arrive with different loop trip counts behind them (ragged
  // rows): reconverge before communicating through the scratch block.
  co_await t.warp_sync();
  for (std::int64_t h = t.width() / 2; h >= 1; h >>= 1) {
    co_await t.write(space, block + t.lane(), *acc);
    co_await t.warp_sync();
    const Word other = co_await t.read(space, block + (t.lane() ^ h));
    co_await t.compute();
    *acc += other;
  }
}

}  // namespace

CsrMatrix make_band_matrix(std::int64_t rows, std::int64_t row_nnz,
                           std::int64_t bandwidth, std::uint64_t seed) {
  HMM_REQUIRE(rows >= 1 && row_nnz >= 1 && bandwidth >= 0,
              "band matrix: bad shape");
  HMM_REQUIRE(row_nnz <= 2 * bandwidth + 1,
              "band matrix: row_nnz exceeds the band");
  Rng rng(seed);
  CsrMatrix a;
  a.rows = a.cols = rows;
  a.row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
  a.row_ptr.push_back(0);
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t lo = std::max<std::int64_t>(0, r - bandwidth);
    const std::int64_t hi = std::min(rows - 1, r + bandwidth);
    std::vector<std::int64_t> window;
    window.reserve(static_cast<std::size_t>(hi - lo + 1));
    for (std::int64_t c = lo; c <= hi; ++c) window.push_back(c);
    // Partial Fisher-Yates: pick row_nnz distinct columns.
    const auto take =
        std::min<std::int64_t>(row_nnz,
                               static_cast<std::int64_t>(window.size()));
    for (std::int64_t k = 0; k < take; ++k) {
      const auto pick = k + static_cast<std::int64_t>(rng.next_below(
                                window.size() - static_cast<std::size_t>(k)));
      std::swap(window[static_cast<std::size_t>(k)],
                window[static_cast<std::size_t>(pick)]);
    }
    window.resize(static_cast<std::size_t>(take));
    std::sort(window.begin(), window.end());
    for (std::int64_t c : window) {
      a.col_idx.push_back(c);
      a.values.push_back(rng.next_in(-9, 9));
    }
    a.row_ptr.push_back(a.nnz());
  }
  return a;
}

BaselineSpmv spmv_sequential(const CsrMatrix& a, std::span<const Word> x) {
  check_csr(a, x);
  const CsrLayout lay(a, 0);
  SequentialRam ram(lay.total);
  for (std::size_t i = 0; i < a.row_ptr.size(); ++i) {
    ram.poke(lay.row_ptr + static_cast<Address>(i), a.row_ptr[i]);
  }
  for (std::size_t i = 0; i < a.col_idx.size(); ++i) {
    ram.poke(lay.col_idx + static_cast<Address>(i), a.col_idx[i]);
  }
  ram.load(lay.values, a.values);
  ram.load(lay.x, x);
  for (Address r = 0; r < a.rows; ++r) {
    const Word start = ram.read(lay.row_ptr + r);
    const Word end = ram.read(lay.row_ptr + r + 1);
    Word acc = 0;
    for (Word k = start; k < end; ++k) {
      const Word col = ram.read(lay.col_idx + k);
      acc += ram.read(lay.values + k) * ram.read(lay.x + col);
      ram.tick();
    }
    ram.write(lay.y + r, acc);
  }
  return {ram.dump(lay.y, a.rows), ram.time()};
}

MachineSpmv spmv_umm_scalar(const CsrMatrix& a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency) {
  check_csr(a, x);
  const CsrLayout lay(a, 0);
  Machine machine = Machine::umm(width, latency, threads, lay.total);
  load_csr(machine.global_memory(), a, x, lay);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t p = t.num_threads();
    for (Address r = t.thread_id(); r < a.rows; r += p) {
      const Word start = co_await t.read(MemorySpace::kGlobal, lay.row_ptr + r);
      const Word end =
          co_await t.read(MemorySpace::kGlobal, lay.row_ptr + r + 1);
      Word acc = 0;
      for (Word k = start; k < end; ++k) {
        const Word col = co_await t.read(MemorySpace::kGlobal, lay.col_idx + k);
        const Word v = co_await t.read(MemorySpace::kGlobal, lay.values + k);
        const Word xv = co_await t.read(MemorySpace::kGlobal, lay.x + col);
        co_await t.compute();
        acc += v * xv;
      }
      co_await t.write(MemorySpace::kGlobal, lay.y + r, acc);
    }
  });
  return {machine.global_memory().dump(lay.y, a.rows), std::move(report)};
}

MachineSpmv spmv_umm_vector(const CsrMatrix& a, std::span<const Word> x,
                            std::int64_t threads, std::int64_t width,
                            Cycle latency) {
  check_csr(a, x);
  HMM_REQUIRE(threads % width == 0, "spmv vector: threads must fill warps");
  const std::int64_t warps = threads / width;
  const CsrLayout lay(a, warps * width);
  Machine machine = Machine::umm(width, latency, threads, lay.total);
  load_csr(machine.global_memory(), a, x, lay);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t nwarps = t.num_threads() / t.width();
    const Address block = lay.scratch + t.warp_id() * t.width();
    for (Address r = t.warp_id(); r < a.rows; r += nwarps) {
      const Word start = co_await t.read(MemorySpace::kGlobal, lay.row_ptr + r);
      const Word end =
          co_await t.read(MemorySpace::kGlobal, lay.row_ptr + r + 1);
      Word acc = 0;
      for (Word k = start + t.lane(); k < end; k += t.width()) {
        const Word col = co_await t.read(MemorySpace::kGlobal, lay.col_idx + k);
        const Word v = co_await t.read(MemorySpace::kGlobal, lay.values + k);
        const Word xv = co_await t.read(MemorySpace::kGlobal, lay.x + col);
        co_await t.compute();
        acc += v * xv;
      }
      co_await device_warp_reduce(t, MemorySpace::kGlobal, block, &acc);
      if (t.lane() == 0) {
        co_await t.write(MemorySpace::kGlobal, lay.y + r, acc);
      }
    }
  });
  return {machine.global_memory().dump(lay.y, a.rows), std::move(report)};
}

MachineSpmv spmv_hmm(const CsrMatrix& a, std::span<const Word> x,
                     std::int64_t num_dmms, std::int64_t threads_per_dmm,
                     std::int64_t width, Cycle latency) {
  check_csr(a, x);
  const std::int64_t d = num_dmms;
  HMM_REQUIRE(a.rows % d == 0, "spmv: rows must be a multiple of d");
  HMM_REQUIRE(threads_per_dmm % width == 0,
              "spmv: threads per DMM must fill warps");
  const CsrLayout lay(a, 0);
  const std::int64_t local_warps = threads_per_dmm / width;
  // Shared: a full copy of x plus the per-warp reduction blocks.
  const Address s_x = 0, s_scratch = a.cols;
  const std::int64_t shared_size = a.cols + local_warps * width;

  Machine machine = Machine::hmm(width, latency, d, threads_per_dmm,
                                 shared_size, lay.total);
  load_csr(machine.global_memory(), a, x, lay);

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t self = t.local_thread_id();
    const std::int64_t workers = t.dmm_thread_count();
    const std::int64_t rows_per_dmm = a.rows / t.num_dmms();
    const Address row0 = t.dmm_id() * rows_per_dmm;

    // Stage x once; every gather afterwards costs latency 1.
    co_await device_copy(t, MemorySpace::kShared, s_x, MemorySpace::kGlobal,
                         lay.x, a.cols, self, workers);
    co_await t.barrier(BarrierScope::kDmm);

    const std::int64_t nwarps = workers / t.width();
    const std::int64_t lwarp = self / t.width();
    const Address block = s_scratch + lwarp * t.width();
    for (Address r = row0 + lwarp; r < row0 + rows_per_dmm; r += nwarps) {
      const Word start = co_await t.read(MemorySpace::kGlobal, lay.row_ptr + r);
      const Word end =
          co_await t.read(MemorySpace::kGlobal, lay.row_ptr + r + 1);
      Word acc = 0;
      for (Word k = start + t.lane(); k < end; k += t.width()) {
        const Word col = co_await t.read(MemorySpace::kGlobal, lay.col_idx + k);
        const Word v = co_await t.read(MemorySpace::kGlobal, lay.values + k);
        const Word xv = co_await t.read(MemorySpace::kShared, s_x + col);
        co_await t.compute();
        acc += v * xv;
      }
      co_await device_warp_reduce(t, MemorySpace::kShared, block, &acc);
      if (t.lane() == 0) {
        co_await t.write(MemorySpace::kGlobal, lay.y + r, acc);
      }
    }
  });
  return {machine.global_memory().dump(lay.y, a.rows), std::move(report)};
}

}  // namespace hmm::alg
