// Iterative 1D 3-point Jacobi stencil (heat diffusion) on the memory
// machine models — the canonical halo-exchange workload: each sweep
// reads every cell's two neighbours, so a flat-global implementation
// pays the full memory latency per sweep, while the HMM implementation
// stages each DMM's slice plus a 1-cell halo into shared memory and
// only touches global memory at slice boundaries between sweeps.
//
//   u'[i] = (u[i-1] + 2 u[i] + u[i+1]) / 4,  boundaries held fixed.
//
// Integer arithmetic: inputs are scaled by the caller (words are
// integers); the division is exact truncation on every model, so
// results are bit-identical across models.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/sequential.hpp"

namespace hmm::alg {

struct MachineStencil {
  std::vector<Word> u;
  RunReport report;
};

struct BaselineStencil {
  std::vector<Word> u;
  Cycle time = 0;
};

/// Reference sweep loop with op counting.
BaselineStencil stencil_sequential(std::span<const Word> u0,
                                   std::int64_t sweeps);

/// Flat UMM: double-buffered sweeps, one machine barrier per sweep.
MachineStencil stencil_umm(std::span<const Word> u0, std::int64_t sweeps,
                           std::int64_t threads, std::int64_t width,
                           Cycle latency, EngineObserver* observer = nullptr,
                           bool fast_forward = true);

/// HMM: each DMM owns an aligned slice; per sweep it refreshes only the
/// 2 halo cells from global memory, sweeps its slice in shared memory,
/// and publishes its 2 boundary cells back — so global traffic per
/// sweep is Θ(d), not Θ(n).  Requires n % d == 0 and n/d >= 2.
MachineStencil stencil_hmm(std::span<const Word> u0, std::int64_t sweeps,
                           std::int64_t num_dmms,
                           std::int64_t threads_per_dmm, std::int64_t width,
                           Cycle latency);

}  // namespace hmm::alg
