#include "alg/plans.hpp"

#include <algorithm>

#include "alg/convolution.hpp"
#include "alg/permutation.hpp"
#include "alg/prefix_sums.hpp"
#include "alg/sort.hpp"
#include "alg/stencil.hpp"
#include "alg/sum.hpp"
#include "alg/transpose.hpp"
#include "core/error.hpp"

namespace hmm::alg {

namespace {

/// Deterministic input words.  Values never influence the access pattern
/// of any plan-registered kernel (the permutation is derived from the
/// seed, not from these), so any fixed fill works — but the dynamic side
/// still computes real results with them.
std::vector<Word> plan_input(std::int64_t n) {
  std::vector<Word> v(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<Word>((i * 2654435761ULL) % 1009);
  }
  return v;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> registered_plans() {
  return {
      {"sum", "umm"},       {"sum", "hmm"},
      {"scan", "umm"},      {"scan", "hmm"},
      {"conv", "umm"},      {"conv", "hmm"},
      {"sort", "umm"},      {"sort", "hmm"},
      {"stencil", "umm"},   {"transpose", "dmm"},
      {"transpose-naive", "dmm"},           {"permute", "dmm"},
  };
}

std::optional<analysis::AccessPlan> build_access_plan(const PlanPoint& point) {
  if (point.algorithm == "sum") return build_sum_plan(point);
  if (point.algorithm == "scan") return build_scan_plan(point);
  if (point.algorithm == "conv") return build_conv_plan(point);
  if (point.algorithm == "sort") return build_sort_plan(point);
  if (point.algorithm == "stencil") return build_stencil_plan(point);
  if (point.algorithm == "transpose") {
    return build_transpose_plan(point, /*skewed=*/true);
  }
  if (point.algorithm == "transpose-naive") {
    return build_transpose_plan(point, /*skewed=*/false);
  }
  if (point.algorithm == "permute") return build_permute_plan(point);
  return std::nullopt;
}

RunReport run_plan_workload(const PlanPoint& point, EngineObserver* observer) {
  const std::int64_t n = point.n, p = point.p, w = point.w, d = point.d;
  const Cycle l = point.l;
  const bool hmm = point.model == "hmm";
  const std::int64_t pd = hmm ? p / std::max<std::int64_t>(d, 1) : p;

  if (point.algorithm == "sum") {
    const std::vector<Word> input = plan_input(n);
    return hmm ? sum_hmm(input, d, pd, w, l, observer).report
               : sum_umm(input, p, w, l, observer).report;
  }
  if (point.algorithm == "scan") {
    const std::vector<Word> input = plan_input(n);
    return hmm ? prefix_sums_hmm(input, d, pd, w, l, observer).report
               : prefix_sums_umm(input, p, w, l, observer).report;
  }
  if (point.algorithm == "sort") {
    const std::vector<Word> input = plan_input(n);
    return hmm ? sort_hmm(input, d, pd, w, l, observer).report
               : sort_umm(input, p, w, l, observer).report;
  }
  if (point.algorithm == "conv") {
    const std::vector<Word> a = plan_input(point.m);
    const std::vector<Word> x = plan_input(conv_signal_length(point.m, n));
    return hmm ? convolution_hmm(a, x, d, pd, w, l, observer).report
               : convolution_umm(a, x, p, w, l, observer).report;
  }
  if (point.algorithm == "stencil") {
    return stencil_umm(plan_input(n), point.m, p, w, l, observer).report;
  }
  if (point.algorithm == "transpose" ||
      point.algorithm == "transpose-naive") {
    const bool skewed = point.algorithm == "transpose";
    const std::int64_t rows = transpose_rows_for(point);
    const std::vector<Word> matrix = plan_input(rows * rows);
    Machine machine =
        Machine::dmm(w, l, p, (skewed ? 3 : 2) * rows * rows);
    machine.set_observer(observer);
    machine.shared_memory(0).load(0, matrix);
    return skewed ? transpose_mm_skewed(machine, rows).report
                  : transpose_mm_naive(machine, rows).report;
  }
  if (point.algorithm == "permute") {
    const std::vector<std::int64_t> perm = random_permutation(n, point.seed);
    const PermutationSchedule schedule(perm, w);
    const std::int64_t warps = std::max<std::int64_t>(
        1, std::min<std::int64_t>(schedule.rounds(), point.l));
    Machine machine = Machine::dmm(w, l, warps * w, 2 * n);
    machine.set_observer(observer);
    machine.shared_memory(0).load(0, plan_input(n));
    return permute_mm_offline(machine, schedule).report;
  }
  throw PreconditionError("no dynamic runner for algorithm '" +
                          point.algorithm + "' / model '" + point.model + "'");
}

}  // namespace hmm::alg
