#include "alg/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "alg/plans.hpp"
#include "core/bipartite.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace hmm::alg {

namespace {

void check_permutation(std::span<const std::int64_t> perm) {
  const auto n = static_cast<std::int64_t>(perm.size());
  HMM_REQUIRE(n >= 1, "permutation: n must be >= 1");
  std::vector<bool> seen(perm.size(), false);
  for (std::int64_t v : perm) {
    HMM_REQUIRE(v >= 0 && v < n && !seen[static_cast<std::size_t>(v)],
                "permutation: values must be a bijection on [0, n)");
    seen[static_cast<std::size_t>(v)] = true;
  }
}

}  // namespace

PermutationSchedule::PermutationSchedule(std::span<const std::int64_t> perm,
                                         std::int64_t width)
    : n_(static_cast<std::int64_t>(perm.size())),
      width_(width),
      perm_(perm.begin(), perm.end()) {
  check_permutation(perm);
  HMM_REQUIRE(width >= 1 && n_ % width == 0,
              "offline permutation: width must divide n");

  // One edge per element: source bank -> destination bank.  The graph is
  // (n/w)-regular because addresses interleave over banks and pi is a
  // bijection; König gives the n/w conflict-free rounds.
  std::vector<BipartiteEdge> edges;
  edges.reserve(perm.size());
  for (std::int64_t i = 0; i < n_; ++i) {
    edges.push_back(BipartiteEdge{
        .left = i % width_,
        .right = perm_[static_cast<std::size_t>(i)] % width_,
        .id = i,
    });
  }
  for (auto& matching : decompose_regular_bipartite(width_, std::move(edges))) {
    std::vector<std::int64_t> round;
    round.reserve(matching.size());
    for (const BipartiteEdge& e : matching) round.push_back(e.id);
    rounds_.push_back(std::move(round));
  }
}

std::int64_t PermutationSchedule::element(std::int64_t round,
                                          std::int64_t lane) const {
  HMM_REQUIRE(round >= 0 && round < rounds() && lane >= 0 && lane < width_,
              "schedule: round/lane out of range");
  return rounds_[static_cast<std::size_t>(round)]
                [static_cast<std::size_t>(lane)];
}

std::int64_t PermutationSchedule::destination(std::int64_t round,
                                              std::int64_t lane) const {
  return perm_[static_cast<std::size_t>(element(round, lane))];
}

MachinePermutation permute_mm_naive(Machine& machine,
                                    std::span<const std::int64_t> perm) {
  const auto n = static_cast<std::int64_t>(perm.size());
  check_permutation(perm);
  HMM_REQUIRE(2 * n <= machine.shared_memory(0).size(),
              "permutation: shared memory must hold 2n cells");

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t p = t.num_threads();
    for (Address i = t.thread_id(); i < n; i += p) {
      const Word v = co_await t.read(MemorySpace::kShared, i);
      co_await t.write(MemorySpace::kShared,
                       n + perm[static_cast<std::size_t>(i)], v);
    }
  });
  return {machine.shared_memory(0).dump(n, n), std::move(report)};
}

MachinePermutation permute_dmm_naive(std::span<const Word> input,
                                     std::span<const std::int64_t> perm,
                                     std::int64_t threads, std::int64_t width,
                                     Cycle latency) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(static_cast<std::int64_t>(perm.size()) == n,
              "permutation length must match input length");
  Machine machine = Machine::dmm(width, latency, threads, 2 * n);
  machine.shared_memory(0).load(0, input);
  return permute_mm_naive(machine, perm);
}

MachinePermutation permute_mm_offline(Machine& machine,
                                      const PermutationSchedule& schedule) {
  const std::int64_t n = schedule.n();
  HMM_REQUIRE(machine.width() == schedule.width(),
              "offline permutation: machine width must match the schedule");
  HMM_REQUIRE(2 * n <= machine.shared_memory(0).size(),
              "offline permutation: shared memory must hold 2n cells");

  RunReport report = machine.run([&](ThreadCtx& t) -> SimTask {
    const std::int64_t lane = t.lane();
    const std::int64_t nwarps = t.num_threads() / t.width();
    // Warp k executes matchings k, k + nwarps, ...: every batch touches
    // w distinct source banks (reads) and w distinct destination banks
    // (writes) — one stage each, by construction.
    for (std::int64_t r = t.warp_id(); r < schedule.rounds(); r += nwarps) {
      const Word v = co_await t.read(MemorySpace::kShared,
                                     schedule.element(r, lane));
      co_await t.write(MemorySpace::kShared,
                       n + schedule.destination(r, lane), v);
    }
  });
  return {machine.shared_memory(0).dump(n, n), std::move(report)};
}

MachinePermutation permute_dmm_offline(std::span<const Word> input,
                                       const PermutationSchedule& schedule,
                                       Cycle latency) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(schedule.n() == n, "schedule was built for a different n");
  const std::int64_t w = schedule.width();
  // Enough warps to hide the latency, never more than there are rounds.
  const std::int64_t warps =
      std::max<std::int64_t>(1, std::min<std::int64_t>(schedule.rounds(),
                                                       latency));
  Machine machine = Machine::dmm(w, latency, warps * w, 2 * n);
  machine.shared_memory(0).load(0, input);
  return permute_mm_offline(machine, schedule);
}

std::vector<std::int64_t> bank_crushing_permutation(std::int64_t n,
                                                    std::int64_t width) {
  HMM_REQUIRE(width >= 1 && n % (width * width) == 0,
              "bank-crushing permutation needs w^2 | n");
  const std::int64_t r = n / width;  // rows of the transpose view
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  // The transpose permutation: element b*w + t -> t*r + b.  Because
  // w | r, all w elements of source block b land in bank (b mod w): the
  // naive kernel pays w-way write conflicts on EVERY warp.
  for (std::int64_t b = 0; b < r; ++b) {
    for (std::int64_t t = 0; t < width; ++t) {
      perm[static_cast<std::size_t>(b * width + t)] = t * r + b;
    }
  }
  return perm;
}

std::vector<std::int64_t> random_permutation(std::int64_t n,
                                             std::uint64_t seed) {
  HMM_REQUIRE(n >= 1, "permutation: n must be >= 1");
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return perm;
}

// ---- plan twins (plans.hpp) -------------------------------------------------

std::optional<analysis::AccessPlan> build_permute_plan(const PlanPoint& point) {
  if (point.model != "dmm") return std::nullopt;
  const std::int64_t n = point.n;
  HMM_REQUIRE(n >= 1 && point.w >= 1 && n % point.w == 0,
              "permute plan: width must divide n");
  // The schedule IS the permutation-table part of the plan: its rounds
  // become explicit table terms, so a data-dependent access pattern is
  // still priced exactly.  Same seed as the dynamic runner.
  const std::vector<std::int64_t> perm = random_permutation(n, point.seed);
  const PermutationSchedule schedule(perm, point.w);
  const std::int64_t warps = std::max<std::int64_t>(
      1, std::min<std::int64_t>(schedule.rounds(), point.l));
  auto plan = analysis::build_access_plan(
      "permute/dmm", {point.w, 1, warps * point.w},
      [&](analysis::PlanCtx& c) {
        const std::int64_t lane = c.lane();
        const std::int64_t nwarps = c.num_threads() / c.width();
        c.set_label("matchings");
        for (std::int64_t r = c.warp_id(); r < schedule.rounds();
             r += nwarps) {
          c.read(MemorySpace::kShared, schedule.element(r, lane));
          c.write(MemorySpace::kShared, n + schedule.destination(r, lane));
        }
      });
  plan.claimed_degree = 1;
  return plan;
}

}  // namespace hmm::alg
