// The sum problem (§V–§VII) on every model of Table I.
//
// Each function loads nothing itself: inputs are written into the target
// machine's memory by the caller-facing convenience overloads, run the
// algorithm, and return the total together with the simulated time.
// Layout conventions are documented per function; callers sizing their
// own machines can use the *_memory_demand helpers.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"
#include "machine/pram.hpp"
#include "machine/sequential.hpp"

namespace hmm::alg {

/// Result of a timed run on a memory machine.
struct MachineSum {
  Word sum = 0;
  RunReport report;
};

/// Result of a timed run on a baseline model.
struct BaselineSum {
  Word sum = 0;
  Cycle time = 0;
};

// ---- baselines (§V) -------------------------------------------------------

/// O(n) sequential sum; advances ram.time() by the op count.
BaselineSum sum_sequential(SequentialRam& ram, Address base, std::int64_t n);
BaselineSum sum_sequential(std::span<const Word> input);

/// Lemma 3: O(n/p + log n) EREW-PRAM sum.  Destroys A[base..base+n).
BaselineSum sum_pram(Pram& pram, Address base, std::int64_t n);
BaselineSum sum_pram(std::span<const Word> input, std::int64_t processors);

// ---- Lemma 5: the DMM and the UMM ----------------------------------------

/// Tree sum of A[base..base+n) in `space` using all machine threads.
/// Destroys the input region; the total ends in A[base].
MachineSum sum_mm(Machine& machine, MemorySpace space, Address base,
                  std::int64_t n);

/// Convenience: builds a standalone DMM (space = shared) or UMM
/// (space = global), loads `input`, runs, returns.  The optional
/// `observer` (telemetry sink, metrics registry, checker...) is attached
/// to the machine for the run.
MachineSum sum_dmm(std::span<const Word> input, std::int64_t threads,
                   std::int64_t width, Cycle latency);
MachineSum sum_umm(std::span<const Word> input, std::int64_t threads,
                   std::int64_t width, Cycle latency,
                   EngineObserver* observer = nullptr,
                   bool fast_forward = true);

// ---- Lemma 6: straightforward HMM sum (one DMM, global memory only) ------

/// Uses only DMM(0)'s threads; column sums over a p0-column layout, then
/// a Lemma-5 tree on the GLOBAL memory (this is the point of Lemma 6: no
/// shared memory, so every tree level pays latency l).
/// Global layout: A[0..n) input (destroyed? no — input preserved),
/// column sums in A[n..n+p0), total returned and left in A[n].
MachineSum sum_hmm_straightforward(Machine& machine, std::int64_t n);
MachineSum sum_hmm_straightforward(std::span<const Word> input,
                                   std::int64_t p0, std::int64_t width,
                                   Cycle latency);

// ---- Theorem 7: the full HMM sum ------------------------------------------

/// All p threads across d DMMs: global column sums into registers,
/// per-DMM tree in latency-1 shared memory, one partial per DMM to
/// global scratch, final staged tree on DMM(0).
/// Global layout: A[0..n) input (preserved), partials in A[n..n+d),
/// total returned and left in A[n].
/// Shared demand per DMM: max(threads_per_dmm, d) cells.
MachineSum sum_hmm(Machine& machine, std::int64_t n);
MachineSum sum_hmm(std::span<const Word> input, std::int64_t num_dmms,
                   std::int64_t threads_per_dmm, std::int64_t width,
                   Cycle latency, EngineObserver* observer = nullptr,
                   bool fast_forward = true);

}  // namespace hmm::alg
