// Device-side building blocks — SubTask subroutines invoked from inside
// kernels with `co_await`.
//
// Collective-call contract: a subroutine that contains barriers must be
// invoked by EVERY thread of its barrier scope with identical shape
// arguments (n, workers, scope), or the run deadlocks — exactly like
// __syncthreads() inside conditional code on a real GPU.  Threads that
// have no work to contribute pass self = kNoWorker and only participate
// in the barriers.
#pragma once

#include "core/types.hpp"
#include "machine/task.hpp"
#include "machine/thread_ctx.hpp"

namespace hmm::alg {

/// Worker index of a thread that only participates in barriers.
inline constexpr std::int64_t kNoWorker = -1;

/// Contiguous access of §IV / Lemma 1: worker `self` of `workers` touches
/// cells base + j*workers + self for every round j.  Barrier-free.
SubTask device_contiguous_read(ThreadCtx& t, MemorySpace space, Address base,
                               std::int64_t n, std::int64_t self,
                               std::int64_t workers);

/// Contiguous copy dst[i] = src[i] for i in [0, n), strip-mined over
/// `workers` threads with the Lemma-1 access pattern on both sides.
/// Barrier-free; spaces may differ (this is Step 1/3 of the §IX
/// convolution: global <-> shared staging).
SubTask device_copy(ThreadCtx& t, MemorySpace dst_space, Address dst,
                    MemorySpace src_space, Address src, std::int64_t n,
                    std::int64_t self, std::int64_t workers);

/// 2D block copy: move a rows x cols block between two row-major
/// layouts with different strides, strip-mined cell-wise over `workers`
/// so every global latency overlaps (one flat sweep, not one copy per
/// row).  Barrier-free.
SubTask device_copy_2d(ThreadCtx& t, MemorySpace dst_space, Address dst,
                       std::int64_t dst_stride, MemorySpace src_space,
                       Address src, std::int64_t src_stride,
                       std::int64_t rows, std::int64_t cols,
                       std::int64_t self, std::int64_t workers);

/// The optimal tree sum of §VI (Lemma 5): repeatedly folds the upper half
/// of A[base .. base+n) onto the lower half with contiguous accesses;
/// the total ends in A[base].  Contains one barrier per level —
/// collective over `scope`.
SubTask device_tree_sum(ThreadCtx& t, MemorySpace space, Address base,
                        std::int64_t n, std::int64_t self,
                        std::int64_t workers, BarrierScope scope);

/// The direct convolution of §VIII (Theorem 8) over one address space:
///   z[i] = sum_{j<m} a[j] * x[i+j],  i in [0, n)
/// with `workers` threads.  When workers > n, workers must be a multiple
/// of n; the workers split into k = workers/n teams that produce partial
/// sums in scratch[0 .. k*n) and tree-reduce them (one barrier per
/// level — collective over `scope`).  When workers <= n the scratch is
/// unused and the subroutine is barrier-free for non-workers... it still
/// must be called collectively because the k > 1 path has barriers; the
/// k == 1 path performs none.
SubTask device_convolution(ThreadCtx& t, MemorySpace space, Address a,
                           std::int64_t m, Address x, std::int64_t n,
                           Address z, Address scratch, std::int64_t self,
                           std::int64_t workers, BarrierScope scope);

}  // namespace hmm::alg
