// Host-side drivers for the contiguous memory access of §IV (Lemma 1 and
// Theorem 2) — the measurement primitives behind every other bound.
#pragma once

#include <utility>
#include <vector>

#include "core/types.hpp"
#include "machine/machine.hpp"

namespace hmm::alg {

/// Lemma 1: p threads read A[base .. base+n) with the round-robin layout
/// (round j, thread i touches A[j*p + i]).  Returns the timing report.
RunReport contiguous_read(Machine& machine, MemorySpace space, Address base,
                          std::int64_t n);

/// Lemma 1, write flavour: thread i writes `value + index` to each cell.
RunReport contiguous_write(Machine& machine, MemorySpace space, Address base,
                           std::int64_t n, Word value);

/// Theorem 2: access several arrays in turn; total size is what matters
/// as long as there are at most p/w arrays.
RunReport contiguous_read_arrays(
    Machine& machine, MemorySpace space,
    const std::vector<std::pair<Address, std::int64_t>>& arrays);

}  // namespace hmm::alg
