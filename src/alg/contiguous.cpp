#include "alg/contiguous.hpp"

#include "alg/device.hpp"
#include "core/error.hpp"

namespace hmm::alg {

RunReport contiguous_read(Machine& machine, MemorySpace space, Address base,
                          std::int64_t n) {
  HMM_REQUIRE(n >= 1, "contiguous_read: n must be >= 1");
  const std::int64_t p = machine.num_threads();
  return machine.run([&](ThreadCtx& t) -> SimTask {
    co_await device_contiguous_read(t, space, base, n, t.thread_id(), p);
  });
}

RunReport contiguous_write(Machine& machine, MemorySpace space, Address base,
                           std::int64_t n, Word value) {
  HMM_REQUIRE(n >= 1, "contiguous_write: n must be >= 1");
  const std::int64_t p = machine.num_threads();
  return machine.run([&](ThreadCtx& t) -> SimTask {
    for (Address i = t.thread_id(); i < n; i += p) {
      co_await t.write(space, base + i, value + i);
    }
  });
}

RunReport contiguous_read_arrays(
    Machine& machine, MemorySpace space,
    const std::vector<std::pair<Address, std::int64_t>>& arrays) {
  HMM_REQUIRE(!arrays.empty(), "contiguous_read_arrays: need >= 1 array");
  const std::int64_t p = machine.num_threads();
  return machine.run([&](ThreadCtx& t) -> SimTask {
    for (const auto& [base, len] : arrays) {
      co_await device_contiguous_read(t, space, base, len, t.thread_id(), p);
    }
  });
}

}  // namespace hmm::alg
