#include "alg/reduce.hpp"

#include <algorithm>
#include <limits>

#include "alg/device.hpp"
#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace hmm::alg {

Word apply_reduce_op(ReduceOp op, Word a, Word b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  throw InternalError("unknown reduce op");
}

Word reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return 0;
    case ReduceOp::kMin: return std::numeric_limits<Word>::max();
    case ReduceOp::kMax: return std::numeric_limits<Word>::min();
  }
  throw InternalError("unknown reduce op");
}

SubTask device_tree_reduce(ThreadCtx& t, MemorySpace space, Address base,
                           std::int64_t n, std::int64_t self,
                           std::int64_t workers, BarrierScope scope,
                           ReduceOp op) {
  HMM_REQUIRE(n >= 1 && workers >= 1, "tree reduce: n>=1, workers>=1");
  std::int64_t s = n;
  while (s > 1) {
    co_await t.barrier(scope);
    const std::int64_t half = ceil_div(s, 2);
    const std::int64_t folds = s - half;
    if (self != kNoWorker) {
      for (Address i = self; i < folds; i += workers) {
        const Word hi = co_await t.read(space, base + half + i);
        const Word lo = co_await t.read(space, base + i);
        co_await t.compute();
        co_await t.write(space, base + i, apply_reduce_op(op, lo, hi));
      }
    }
    s = half;
  }
  co_await t.barrier(scope);
}

MachineReduce reduce_umm(std::span<const Word> input, ReduceOp op,
                         std::int64_t threads, std::int64_t width,
                         Cycle latency) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(n >= 1, "reduce: n must be >= 1");
  Machine m = Machine::umm(width, latency, threads, n);
  m.global_memory().load(0, input);
  RunReport report = m.run([&](ThreadCtx& t) -> SimTask {
    co_await device_tree_reduce(t, MemorySpace::kGlobal, 0, n, t.thread_id(),
                                t.num_threads(), BarrierScope::kMachine, op);
  });
  return {m.global_memory().peek(0), std::move(report)};
}

MachineReduce reduce_hmm(std::span<const Word> input, ReduceOp op,
                         std::int64_t num_dmms, std::int64_t threads_per_dmm,
                         std::int64_t width, Cycle latency) {
  const auto n = static_cast<std::int64_t>(input.size());
  HMM_REQUIRE(n >= 1, "reduce: n must be >= 1");
  const std::int64_t d = num_dmms;
  const std::int64_t shared_size = std::max(threads_per_dmm, d);
  Machine m = Machine::hmm(width, latency, d, threads_per_dmm, shared_size,
                           n + d);
  m.global_memory().load(0, input);

  RunReport report = m.run([&](ThreadCtx& t) -> SimTask {
    // Theorem-7 structure with the generic monoid: register column
    // folds, per-DMM shared tree, staged final tree on DMM(0).
    const std::int64_t p = t.num_threads();
    const std::int64_t pd = t.dmm_thread_count();
    const std::int64_t self = t.local_thread_id();
    Word acc = reduce_identity(op);
    for (Address i = t.thread_id(); i < n; i += p) {
      const Word v = co_await t.read(MemorySpace::kGlobal, i);
      co_await t.compute();
      acc = apply_reduce_op(op, acc, v);
    }
    co_await t.write(MemorySpace::kShared, self, acc);
    co_await device_tree_reduce(t, MemorySpace::kShared, 0, pd, self, pd,
                                BarrierScope::kDmm, op);
    if (self == 0) {
      const Word dv = co_await t.read(MemorySpace::kShared, 0);
      co_await t.write(MemorySpace::kGlobal, n + t.dmm_id(), dv);
    }
    co_await t.barrier(BarrierScope::kMachine);
    if (t.dmm_id() != 0) co_return;
    const std::int64_t stagers = std::min(pd, d);
    co_await device_copy(t, MemorySpace::kShared, 0, MemorySpace::kGlobal, n,
                         d, self < stagers ? self : kNoWorker, stagers);
    co_await t.barrier(BarrierScope::kDmm);
    co_await device_tree_reduce(t, MemorySpace::kShared, 0, d, self, pd,
                                BarrierScope::kDmm, op);
    if (self == 0) {
      const Word total = co_await t.read(MemorySpace::kShared, 0);
      co_await t.write(MemorySpace::kGlobal, n, total);
    }
  });
  return {m.global_memory().peek(n), std::move(report)};
}

}  // namespace hmm::alg
